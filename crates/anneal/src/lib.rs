//! Conventional Ising heuristics: simulated annealing and mean-field
//! relaxations.
//!
//! SA is the conventional sequential-update Ising solver the paper compares
//! SB against, and the search engine behind the BA baseline (ref.\[10\]). A single
//! sweep proposes one flip per spin; the Metropolis rule accepts uphill
//! moves with probability `exp(−ΔE/T)` under a decreasing temperature
//! schedule.
//!
//! Two relaxation-based heuristics round out the solver portfolio:
//! [`SimCim`] (mean-field coherent-Ising-machine dynamics under a ramped
//! pump) and [`Doch`] (a monotone difference-of-convex fixed-point
//! iteration). Both read spins out as `sign(xᵢ)`, polish with
//! [`greedy_descent`], and are deterministic per `(problem, seed)`.
//!
//! # Example
//!
//! ```
//! use adis_ising::IsingBuilder;
//! use adis_anneal::{Annealer, Schedule};
//!
//! let p = IsingBuilder::new(4)
//!     .coupling(0, 1, 1.0)
//!     .coupling(1, 2, 1.0)
//!     .coupling(2, 3, 1.0)
//!     .build();
//! let r = Annealer::new().schedule(Schedule::geometric(2.0, 0.01, 200)).seed(1).solve(&p);
//! assert_eq!(r.best_energy, -3.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod doch;
mod simcim;

pub use doch::Doch;
pub use simcim::{MeanFieldResult, SimCim};

use adis_ising::{IsingProblem, SpinVector};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Deterministic greedy single-flip descent from `(state, energy)`.
///
/// Repeatedly sweeps the spins in index order, committing every flip with
/// a negative [`IsingProblem::flip_delta`], until a full sweep finds no
/// improving flip (or a generous sweep cap is hit). Returns the descended
/// state and its energy; `energy` must equal `problem.energy(&state)`.
pub fn greedy_descent(
    problem: &IsingProblem,
    mut state: SpinVector,
    mut energy: f64,
) -> (SpinVector, f64) {
    let n = problem.num_spins();
    for _sweep in 0..4 * n.max(1) {
        let mut improved = false;
        for i in 0..n {
            let delta = problem.flip_delta(&state, i);
            if delta < -1e-15 {
                state.flip(i);
                energy += delta;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    (state, energy)
}

/// A temperature schedule: a starting temperature, a cooling rule, and the
/// number of sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    t_start: f64,
    t_end: f64,
    sweeps: usize,
    kind: ScheduleKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScheduleKind {
    Geometric,
    Linear,
}

impl Schedule {
    /// Geometric cooling from `t_start` to `t_end` over `sweeps` sweeps.
    ///
    /// # Panics
    ///
    /// Panics unless `t_start >= t_end > 0` and `sweeps > 0`.
    pub fn geometric(t_start: f64, t_end: f64, sweeps: usize) -> Self {
        assert!(t_start >= t_end && t_end > 0.0, "need t_start >= t_end > 0");
        assert!(sweeps > 0, "need at least one sweep");
        Schedule {
            t_start,
            t_end,
            sweeps,
            kind: ScheduleKind::Geometric,
        }
    }

    /// Linear cooling from `t_start` to `t_end` over `sweeps` sweeps.
    ///
    /// # Panics
    ///
    /// Panics unless `t_start >= t_end > 0` and `sweeps > 0`.
    pub fn linear(t_start: f64, t_end: f64, sweeps: usize) -> Self {
        assert!(t_start >= t_end && t_end > 0.0, "need t_start >= t_end > 0");
        assert!(sweeps > 0, "need at least one sweep");
        Schedule {
            t_start,
            t_end,
            sweeps,
            kind: ScheduleKind::Linear,
        }
    }

    /// Number of sweeps.
    pub fn sweeps(&self) -> usize {
        self.sweeps
    }

    /// Temperature at sweep `k` (0-based).
    pub fn temperature(&self, k: usize) -> f64 {
        if self.sweeps <= 1 {
            return self.t_start;
        }
        let frac = k as f64 / (self.sweeps - 1) as f64;
        match self.kind {
            ScheduleKind::Geometric => {
                self.t_start * (self.t_end / self.t_start).powf(frac)
            }
            ScheduleKind::Linear => self.t_start + (self.t_end - self.t_start) * frac,
        }
    }
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule::geometric(5.0, 0.01, 500)
    }
}

/// Outcome of an annealing run.
#[derive(Debug, Clone)]
pub struct AnnealResult {
    /// Best configuration seen across all sweeps.
    pub best_state: SpinVector,
    /// Its energy (including the problem offset).
    pub best_energy: f64,
    /// Total spin-flip proposals made.
    pub proposals: usize,
    /// Accepted flips.
    pub accepted: usize,
}

/// A configured Metropolis simulated annealer.
#[derive(Debug, Clone, Default)]
pub struct Annealer {
    schedule: Schedule,
    seed: u64,
}

impl Annealer {
    /// An annealer with the default geometric schedule.
    pub fn new() -> Self {
        Annealer::default()
    }

    /// Sets the temperature schedule.
    pub fn schedule(mut self, s: Schedule) -> Self {
        self.schedule = s;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs annealing from a random initial state.
    pub fn solve(&self, problem: &IsingProblem) -> AnnealResult {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let n = problem.num_spins();
        let init = SpinVector::from_bools((0..n).map(|_| rng.gen_bool(0.5)));
        self.solve_from(problem, init, &mut rng)
    }

    /// Runs annealing from a given initial state with a caller-provided RNG.
    ///
    /// # Panics
    ///
    /// Panics if the state length differs from the problem's spin count.
    pub fn solve_from<R: Rng + ?Sized>(
        &self,
        problem: &IsingProblem,
        initial: SpinVector,
        rng: &mut R,
    ) -> AnnealResult {
        assert_eq!(
            initial.len(),
            problem.num_spins(),
            "initial state length mismatch"
        );
        let n = problem.num_spins();
        let mut state = initial;
        let mut energy = problem.energy(&state);
        let mut best_state = state.clone();
        let mut best_energy = energy;
        let mut proposals = 0;
        let mut accepted = 0;

        for sweep in 0..self.schedule.sweeps() {
            let t = self.schedule.temperature(sweep);
            for i in 0..n {
                proposals += 1;
                let delta = problem.flip_delta(&state, i);
                if delta <= 0.0 || rng.gen::<f64>() < (-delta / t).exp() {
                    state.flip(i);
                    energy += delta;
                    accepted += 1;
                    if energy < best_energy {
                        best_energy = energy;
                        best_state = state.clone();
                    }
                }
            }
        }

        AnnealResult {
            best_state,
            best_energy,
            proposals,
            accepted,
        }
    }

    /// Runs `replicas` independent restarts and keeps the best.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`.
    pub fn solve_batch(&self, problem: &IsingProblem, replicas: usize) -> AnnealResult {
        assert!(replicas > 0, "need at least one replica");
        (0..replicas)
            .map(|r| {
                self.clone()
                    .seed(self.seed.wrapping_add(r as u64))
                    .solve(problem)
            })
            .min_by(|a, b| a.best_energy.total_cmp(&b.best_energy))
            .expect("replicas > 0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adis_ising::{solve_exhaustive, IsingBuilder};

    fn random_problem(n: usize, seed: u64) -> IsingProblem {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = IsingBuilder::new(n);
        for i in 0..n {
            b.add_bias(i, rng.gen_range(-1.0..1.0));
            for j in (i + 1)..n {
                b.add_coupling(i, j, rng.gen_range(-1.0..1.0));
            }
        }
        b.build()
    }

    #[test]
    fn schedule_endpoints() {
        let g = Schedule::geometric(4.0, 0.5, 10);
        assert!((g.temperature(0) - 4.0).abs() < 1e-12);
        assert!((g.temperature(9) - 0.5).abs() < 1e-12);
        let l = Schedule::linear(4.0, 0.5, 10);
        assert!((l.temperature(0) - 4.0).abs() < 1e-12);
        assert!((l.temperature(9) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn schedule_monotone_decreasing() {
        for s in [Schedule::geometric(3.0, 0.1, 20), Schedule::linear(3.0, 0.1, 20)] {
            for k in 1..20 {
                assert!(s.temperature(k) <= s.temperature(k - 1) + 1e-12);
            }
        }
    }

    #[test]
    fn finds_ground_state_of_small_instances() {
        for seed in 0..5 {
            let p = random_problem(10, seed);
            let exact = solve_exhaustive(&p);
            let r = Annealer::new()
                .schedule(Schedule::geometric(3.0, 0.01, 300))
                .seed(seed)
                .solve_batch(&p, 4);
            assert!(
                r.best_energy <= exact.energy + 1e-9 + 0.05 * exact.energy.abs(),
                "seed {seed}: sa {} vs exact {}",
                r.best_energy,
                exact.energy
            );
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = random_problem(8, 42);
        let a = Annealer::new().seed(5).solve(&p);
        let b = Annealer::new().seed(5).solve(&p);
        assert_eq!(a.best_state, b.best_state);
        assert_eq!(a.accepted, b.accepted);
    }

    #[test]
    fn acceptance_bookkeeping() {
        let p = random_problem(6, 1);
        let r = Annealer::new().seed(0).solve(&p);
        assert_eq!(r.proposals, 6 * Schedule::default().sweeps());
        assert!(r.accepted <= r.proposals);
    }

    #[test]
    fn best_energy_matches_best_state() {
        let p = random_problem(9, 3);
        let r = Annealer::new().seed(9).solve(&p);
        assert!((p.energy(&r.best_state) - r.best_energy).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "t_start >= t_end > 0")]
    fn schedule_validation() {
        Schedule::geometric(0.1, 1.0, 10);
    }

    #[test]
    fn greedy_descent_reaches_a_single_flip_local_minimum() {
        let p = random_problem(10, 4);
        let start = SpinVector::all_up(10);
        let (state, energy) = greedy_descent(&p, start.clone(), p.energy(&start));
        assert!((p.energy(&state) - energy).abs() < 1e-9);
        assert!(energy <= p.energy(&start) + 1e-12);
        for i in 0..10 {
            assert!(p.flip_delta(&state, i) >= -1e-12, "flip {i} still improves");
        }
    }
}
