//! SimCIM: mean-field coherent-Ising-machine dynamics.
//!
//! A discrete-time mean-field model of a measurement-feedback CIM
//! (Tiunov et al., "Annealing by simulating the coherent Ising machine",
//! Opt. Express 2019). Each spin carries a real amplitude `cᵢ ∈ [−1, 1]`
//! updated by a linear gain/loss term under a ramped pump plus the Ising
//! feedback field, with annealed injection noise:
//!
//! ```text
//! cᵢ ← clamp(cᵢ + Δt·[(p(t) − 1)·cᵢ + ζ·(h + J·c)ᵢ] + σ·(1 − p(t))·ξ)
//! ```
//!
//! where `p(t)` ramps linearly from 0 to 1 over the run and `ξ` is
//! uniform noise. Spins are read out as `sign(cᵢ)` at sampling points; the
//! best readout (after a deterministic greedy single-flip polish) across
//! all restarts wins. The trajectory is cheap — one coupling pass per
//! step — which makes SimCIM a useful portfolio lane next to bSB.

use crate::greedy_descent;
use adis_ising::{IsingProblem, SpinVector};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Outcome of a mean-field run ([`SimCim`] or [`crate::Doch`]).
#[derive(Debug, Clone)]
pub struct MeanFieldResult {
    /// Best sign readout seen across all restarts (after polish).
    pub best_state: SpinVector,
    /// Its energy (including the problem offset).
    pub best_energy: f64,
    /// Total update steps executed across all restarts.
    pub iterations: usize,
}

/// A configured SimCIM solver.
///
/// Deterministic per `(problem, seed)`: restarts derive their RNG streams
/// from `seed + restart` and all updates are fixed-order.
#[derive(Debug, Clone, PartialEq)]
pub struct SimCim {
    iterations: usize,
    dt: f64,
    noise: f64,
    restarts: usize,
    sample_every: usize,
    seed: u64,
}

impl Default for SimCim {
    fn default() -> Self {
        SimCim {
            iterations: 600,
            dt: 0.05,
            noise: 0.03,
            restarts: 4,
            sample_every: 20,
            seed: 0,
        }
    }
}

impl SimCim {
    /// A solver with the default schedule (600 steps × 4 restarts).
    pub fn new() -> Self {
        SimCim::default()
    }

    /// Sets the number of update steps per restart.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn iterations(mut self, iterations: usize) -> Self {
        assert!(iterations > 0, "need at least one iteration");
        self.iterations = iterations;
        self
    }

    /// Sets the Euler step size.
    pub fn dt(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }

    /// Sets the injection-noise amplitude (annealed to zero with the pump).
    pub fn noise(mut self, noise: f64) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the number of independent restarts.
    ///
    /// # Panics
    ///
    /// Panics if `restarts == 0`.
    pub fn restarts(mut self, restarts: usize) -> Self {
        assert!(restarts > 0, "need at least one restart");
        self.restarts = restarts;
        self
    }

    /// Sets the sign-readout sampling cadence (in steps).
    ///
    /// # Panics
    ///
    /// Panics if `sample_every == 0`.
    pub fn sample_every(mut self, sample_every: usize) -> Self {
        assert!(sample_every > 0, "need sample_every >= 1");
        self.sample_every = sample_every;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs all restarts to completion and keeps the best readout.
    pub fn solve(&self, problem: &IsingProblem) -> MeanFieldResult {
        self.solve_until(problem, &|| false).0
    }

    /// [`solve`](SimCim::solve) with a cooperative stop hook.
    ///
    /// `should_stop` is polled at every sampling point (and between
    /// restarts), *after* the readout at that point has been recorded, so
    /// even an immediately-firing hook yields a valid `best_state`. The
    /// returned flag is true when the hook cut the run short; the result
    /// then holds the best readout seen so far.
    pub fn solve_until(
        &self,
        problem: &IsingProblem,
        should_stop: &dyn Fn() -> bool,
    ) -> (MeanFieldResult, bool) {
        let n = problem.num_spins();
        if n == 0 {
            let state = SpinVector::from_raw(Vec::new());
            let energy = problem.offset();
            return (
                MeanFieldResult {
                    best_state: state,
                    best_energy: energy,
                    iterations: 0,
                },
                false,
            );
        }
        // Feedback gain: the Goto-style c₀ prescription keeps the coupling
        // term commensurate with the unit gain/loss term regardless of
        // instance scale.
        let rms = problem.coupling_rms();
        let zeta = if rms > 0.0 {
            0.5 / (rms * (n as f64).sqrt())
        } else {
            let m = problem.max_abs_coefficient();
            if m > 0.0 {
                1.0 / m
            } else {
                1.0
            }
        };

        let mut best: Option<(SpinVector, f64)> = None;
        let mut total_iterations = 0;
        let mut interrupted = false;
        let mut c = vec![0.0f64; n];
        let mut field = vec![0.0f64; n];

        'restarts: for restart in 0..self.restarts {
            let mut rng = ChaCha8Rng::seed_from_u64(self.seed.wrapping_add(restart as u64));
            for ci in c.iter_mut() {
                *ci = rng.gen_range(-0.1..0.1);
            }
            for t in 0..self.iterations {
                let pump = (t + 1) as f64 / self.iterations as f64;
                problem.field(&c, &mut field);
                for i in 0..n {
                    let drift = (pump - 1.0) * c[i] + zeta * field[i];
                    let kick = self.noise * (1.0 - pump) * rng.gen_range(-1.0..1.0);
                    c[i] = (c[i] + self.dt * drift + kick).clamp(-1.0, 1.0);
                }
                total_iterations += 1;
                if (t + 1) % self.sample_every == 0 || t + 1 == self.iterations {
                    let state = SpinVector::from_signs(&c);
                    let energy = problem.energy(&state);
                    if best.as_ref().map(|&(_, b)| energy < b).unwrap_or(true) {
                        best = Some((state, energy));
                    }
                    if should_stop() {
                        interrupted = true;
                        break 'restarts;
                    }
                }
            }
            // Polish this restart's endpoint before moving on.
            if let Some((state, energy)) = best.take() {
                best = Some(greedy_descent(problem, state, energy));
            }
            if should_stop() {
                interrupted = true;
                break;
            }
        }

        let (mut state, mut energy) = best.expect("restarts > 0 and iterations > 0");
        // Interrupted runs skip the per-restart polish above; always leave
        // through it so the readout is at a single-flip local minimum.
        (state, energy) = greedy_descent(problem, state, energy);
        (
            MeanFieldResult {
                best_state: state,
                best_energy: energy,
                iterations: total_iterations,
            },
            interrupted,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adis_ising::{solve_exhaustive, IsingBuilder};

    fn random_problem(n: usize, seed: u64) -> IsingProblem {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = IsingBuilder::new(n);
        for i in 0..n {
            b.add_bias(i, rng.gen_range(-1.0..1.0));
            for j in (i + 1)..n {
                b.add_coupling(i, j, rng.gen_range(-1.0..1.0));
            }
        }
        b.build()
    }

    #[test]
    fn finds_near_ground_states() {
        for seed in 0..5 {
            let p = random_problem(10, seed);
            let exact = solve_exhaustive(&p);
            let r = SimCim::new().seed(seed).solve(&p);
            assert!(
                r.best_energy <= exact.energy + 1e-9 + 0.05 * exact.energy.abs(),
                "seed {seed}: simcim {} vs exact {}",
                r.best_energy,
                exact.energy
            );
            assert!((p.energy(&r.best_state) - r.best_energy).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = random_problem(9, 7);
        let a = SimCim::new().seed(3).solve(&p);
        let b = SimCim::new().seed(3).solve(&p);
        assert_eq!(a.best_state, b.best_state);
        assert_eq!(a.best_energy, b.best_energy);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn immediate_stop_still_returns_a_valid_state() {
        let p = random_problem(8, 2);
        let (r, interrupted) = SimCim::new().seed(1).solve_until(&p, &|| true);
        assert!(interrupted);
        assert_eq!(r.best_state.len(), 8);
        assert!((p.energy(&r.best_state) - r.best_energy).abs() < 1e-9);
        // Stopped at the first sampling point of the first restart.
        assert!(r.iterations <= SimCim::default().sample_every);
    }

    #[test]
    fn never_firing_hook_matches_solve(){
        let p = random_problem(7, 11);
        let plain = SimCim::new().seed(5).solve(&p);
        let (hooked, interrupted) = SimCim::new().seed(5).solve_until(&p, &|| false);
        assert!(!interrupted);
        assert_eq!(plain.best_state, hooked.best_state);
        assert_eq!(plain.best_energy, hooked.best_energy);
    }

    #[test]
    fn empty_problem() {
        let p = IsingBuilder::new(0).offset(2.5).build();
        let r = SimCim::new().solve(&p);
        assert_eq!(r.best_energy, 2.5);
        assert_eq!(r.best_state.len(), 0);
    }
}
