//! DOCH: a difference-of-convex heuristic for Ising minimisation.
//!
//! The relaxed Ising energy `E(x) = offset − h·x − ½·xᵀJx` over the box
//! `[−1, 1]ⁿ` is an indefinite quadratic. Splitting it as a difference of
//! convex functions, `E = [½ρ‖x‖² − h·x] − [½ρ‖x‖² + ½xᵀJx]` with
//! `ρ ≥ ‖J‖` (a Gershgorin row-sum bound keeps both brackets convex),
//! the DCA/CCCP iteration linearises the subtracted part at the current
//! iterate and minimises the rest in closed form:
//!
//! ```text
//! x ← clamp(x + (h + J·x)/ρ)        (coordinate-wise, to [−1, 1])
//! ```
//!
//! Each step provably does not increase `E`, so the iteration runs to a
//! fixed point (or an iteration cap), reads spins out as `sign(xᵢ)`, and
//! polishes with deterministic greedy single-flip descent. Multiple
//! restarts from random corners escape poor basins; the whole procedure
//! is noise-free and deterministic per `(problem, seed)`.

use crate::{greedy_descent, MeanFieldResult};
use adis_ising::{IsingProblem, SpinVector};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// How often the cooperative stop hook is polled, in DCA iterations.
const POLL_EVERY: usize = 16;

/// A configured difference-of-convex (DCA) Ising heuristic.
#[derive(Debug, Clone, PartialEq)]
pub struct Doch {
    max_iters: usize,
    tol: f64,
    restarts: usize,
    seed: u64,
}

impl Default for Doch {
    fn default() -> Self {
        Doch {
            max_iters: 500,
            tol: 1e-10,
            restarts: 12,
            seed: 0,
        }
    }
}

impl Doch {
    /// A solver with the default budget (500 iterations × 12 restarts).
    pub fn new() -> Self {
        Doch::default()
    }

    /// Caps the DCA iterations per restart.
    ///
    /// # Panics
    ///
    /// Panics if `max_iters == 0`.
    pub fn max_iters(mut self, max_iters: usize) -> Self {
        assert!(max_iters > 0, "need at least one iteration");
        self.max_iters = max_iters;
        self
    }

    /// Sets the fixed-point tolerance on `max|Δxᵢ|`.
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the number of restarts (the first starts from `x = 0`, the
    /// rest from seeded random points in the box).
    ///
    /// # Panics
    ///
    /// Panics if `restarts == 0`.
    pub fn restarts(mut self, restarts: usize) -> Self {
        assert!(restarts > 0, "need at least one restart");
        self.restarts = restarts;
        self
    }

    /// Sets the RNG seed for the random restarts.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs all restarts to their fixed points and keeps the best readout.
    pub fn solve(&self, problem: &IsingProblem) -> MeanFieldResult {
        self.solve_until(problem, &|| false).0
    }

    /// [`solve`](Doch::solve) with a cooperative stop hook, polled every
    /// few iterations and between restarts. The first restart's first
    /// readout always completes, so even an immediately-firing hook yields
    /// a valid `best_state`; the returned flag reports whether the hook
    /// cut the run short.
    pub fn solve_until(
        &self,
        problem: &IsingProblem,
        should_stop: &dyn Fn() -> bool,
    ) -> (MeanFieldResult, bool) {
        let n = problem.num_spins();
        if n == 0 {
            return (
                MeanFieldResult {
                    best_state: SpinVector::from_raw(Vec::new()),
                    best_energy: problem.offset(),
                    iterations: 0,
                },
                false,
            );
        }
        // Gershgorin bound on ‖J‖: the largest absolute row sum. Biases
        // join the floor so pure-field problems still take finite steps.
        let (row_ptr, _cols, weights) = problem.csr();
        let mut rho = 0.0f64;
        for i in 0..n {
            let r = row_ptr[i] as usize..row_ptr[i + 1] as usize;
            let row_sum: f64 = weights[r].iter().map(|v| v.abs()).sum();
            rho = rho.max(row_sum);
        }
        rho = rho.max(problem.max_abs_coefficient()).max(1e-12);

        let mut best: Option<(SpinVector, f64)> = None;
        let mut total_iterations = 0;
        let mut interrupted = false;
        let mut x = vec![0.0f64; n];
        let mut field = vec![0.0f64; n];

        'restarts: for restart in 0..self.restarts {
            if restart == 0 {
                x.iter_mut().for_each(|xi| *xi = 0.0);
            } else {
                let mut rng =
                    ChaCha8Rng::seed_from_u64(self.seed.wrapping_add(restart as u64));
                for xi in x.iter_mut() {
                    *xi = rng.gen_range(-1.0..1.0);
                }
            }
            for k in 0..self.max_iters {
                problem.field(&x, &mut field);
                let mut max_delta = 0.0f64;
                for i in 0..n {
                    let next = (x[i] + field[i] / rho).clamp(-1.0, 1.0);
                    max_delta = max_delta.max((next - x[i]).abs());
                    x[i] = next;
                }
                total_iterations += 1;
                if max_delta < self.tol {
                    break;
                }
                if (k + 1) % POLL_EVERY == 0 && should_stop() {
                    interrupted = true;
                    break;
                }
            }
            let state = SpinVector::from_signs(&x);
            let energy = problem.energy(&state);
            let (state, energy) = greedy_descent(problem, state, energy);
            if best.as_ref().map(|&(_, b)| energy < b).unwrap_or(true) {
                best = Some((state, energy));
            }
            if interrupted || should_stop() {
                interrupted = true;
                break 'restarts;
            }
        }

        let (state, energy) = best.expect("restarts > 0");
        (
            MeanFieldResult {
                best_state: state,
                best_energy: energy,
                iterations: total_iterations,
            },
            interrupted,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adis_ising::{solve_exhaustive, IsingBuilder};

    fn random_problem(n: usize, seed: u64) -> IsingProblem {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = IsingBuilder::new(n);
        for i in 0..n {
            b.add_bias(i, rng.gen_range(-1.0..1.0));
            for j in (i + 1)..n {
                b.add_coupling(i, j, rng.gen_range(-1.0..1.0));
            }
        }
        b.build()
    }

    #[test]
    fn finds_near_ground_states() {
        for seed in 0..5 {
            let p = random_problem(10, seed);
            let exact = solve_exhaustive(&p);
            let r = Doch::new().seed(seed).solve(&p);
            assert!(
                r.best_energy <= exact.energy + 1e-9 + 0.05 * exact.energy.abs(),
                "seed {seed}: doch {} vs exact {}",
                r.best_energy,
                exact.energy
            );
            assert!((p.energy(&r.best_state) - r.best_energy).abs() < 1e-9);
        }
    }

    #[test]
    fn iterates_monotonically_decrease_the_relaxed_energy() {
        // One restart, no polish interference: track E(x) across the DCA
        // fixed-point iteration by re-running with increasing caps.
        let p = random_problem(8, 3);
        let mut last = f64::INFINITY;
        for cap in [1, 2, 4, 8, 16, 64] {
            let r = Doch::new().restarts(1).max_iters(cap).solve(&p);
            assert!(
                r.best_energy <= last + 1e-9,
                "cap {cap} worsened the readout: {} > {last}",
                r.best_energy
            );
            last = r.best_energy;
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = random_problem(9, 5);
        let a = Doch::new().seed(2).solve(&p);
        let b = Doch::new().seed(2).solve(&p);
        assert_eq!(a.best_state, b.best_state);
        assert_eq!(a.best_energy, b.best_energy);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn immediate_stop_still_returns_a_valid_state() {
        let p = random_problem(8, 9);
        let (r, interrupted) = Doch::new().solve_until(&p, &|| true);
        assert!(interrupted);
        assert_eq!(r.best_state.len(), 8);
        assert!((p.energy(&r.best_state) - r.best_energy).abs() < 1e-9);
    }

    #[test]
    fn pure_bias_problem_is_solved_exactly() {
        // With J = 0 the optimum is σᵢ = sign(hᵢ); energy convention is
        // E = −Σ hᵢσᵢ.
        let mut b = IsingBuilder::new(4);
        for (i, h) in [1.0, -2.0, 0.5, -0.25].iter().enumerate() {
            b.add_bias(i, *h);
        }
        let p = b.build();
        let r = Doch::new().solve(&p);
        assert!((r.best_energy - (-3.75)).abs() < 1e-12);
    }
}
