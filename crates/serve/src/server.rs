//! The decomposition job server: admission control, a solver worker pool,
//! a job registry, and the HTTP front end.
//!
//! # Architecture
//!
//! ```text
//!  accept thread ──▶ connection queue ──▶ HTTP threads ──▶ job queue (bounded)
//!                                             │                 │
//!                                             ▼                 ▼
//!                                        job registry ◀── solver workers
//!                                                              │
//!                                                              ▼
//!                                                   SharedCopCache (all workers)
//! ```
//!
//! Two thread pools, hand-rolled on `Mutex` + `Condvar`: HTTP threads
//! parse requests and answer status queries; solver workers drain the
//! bounded job queue and run the decomposition. The split keeps polling
//! responsive while every worker is busy solving. Per-job parallelism is
//! disabled (`Framework::parallel(false)`): under a serving workload the
//! concurrency budget belongs to the worker pool, not to any one job.
//!
//! # Admission control and timeouts
//!
//! Submissions beyond [`ServeConfig::queue_depth`] waiting jobs are
//! rejected with `429` — the queue never grows unboundedly, and a
//! closed-loop client can use the `429` as backpressure. The per-job
//! timeout is **cooperative** at three points: when a worker dequeues the
//! job (stale jobs are failed without solving), *during* the solve (the
//! remaining budget is threaded into the framework as a
//! [`Framework::deadline`], so every COP solve unwinds with its incumbent
//! at the next poll point once the budget runs out), and when the solve
//! finishes (late results are reported as `timed_out`, never `done`). A
//! long solve therefore stops within one poll interval of the timeout
//! instead of running to completion first.
//!
//! # Determinism
//!
//! All workers share one [`SharedCopCache`]. Entries are namespaced by
//! solver fingerprint and framework seed (see `adis-core`), and solver
//! seeds are content-derived, so a cache hit returns bit-for-bit what a
//! recompute would have produced: two submissions of the same spec get
//! identical results whether they hit the cache or race to miss it.

use crate::http::{self, ReadError, Request};
use crate::protocol::{JobSpec, SolverChoice};
use adis_core::{
    BaParams, CacheConfig, CopSolverKind, Framework, IsingCopSolver, KernelPrecision, Mode,
    PartitionedCopSolver, PortfolioSolver, SharedCopCache,
};
use adis_telemetry::{Json, Recorder, ReportCell, RunReport};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration. `Default` is tuned for a local instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port `0` to let the OS pick (tests, loadgen
    /// self-hosting).
    pub addr: String,
    /// Solver worker threads.
    pub workers: usize,
    /// HTTP connection-handler threads.
    pub http_threads: usize,
    /// Maximum jobs waiting in the queue before submissions get `429`
    /// (running jobs do not count).
    pub queue_depth: usize,
    /// Cooperative per-job timeout, measured from submission.
    pub job_timeout: Duration,
    /// Shared cross-request COP cache shape.
    pub cache: CacheConfig,
    /// When set, every completed job also writes a `RunReport` here
    /// (collision-proof names via `RunReport::write_unique`).
    pub report_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7171".to_string(),
            workers: 2,
            http_threads: 2,
            queue_depth: 64,
            job_timeout: Duration::from_secs(30),
            cache: CacheConfig::default(),
            report_dir: None,
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone)]
enum JobState {
    Queued,
    Running,
    Done(JobResult),
    Failed(String),
    TimedOut,
}

/// The measurements of a finished job, as exposed on the status endpoint.
#[derive(Debug, Clone)]
struct JobResult {
    med: f64,
    er: f64,
    objective: f64,
    solver: String,
    within_budget: Option<bool>,
    lut_bits: u64,
    direct_bits: u64,
    cop_solves: u64,
    cache_hits: u64,
    cache_misses: u64,
    sb_iterations: u64,
    queue_seconds: f64,
    solve_seconds: f64,
}

struct Job {
    spec: JobSpec,
    submitted: Instant,
    state: JobState,
}

#[derive(Default)]
struct JobCounters {
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    timed_out: AtomicU64,
    bad_requests: AtomicU64,
    running: AtomicU64,
    // Fused multi-COP batch occupancy, summed over every job's recorder.
    // Zero as long as jobs run single-candidate with a deadline (the
    // fused path only engages for parallel, uncontrolled runs), but the
    // seam keeps /v1/stats honest if that ever changes.
    fused_batches: AtomicU64,
    fused_units: AtomicU64,
    fused_refills: AtomicU64,
    fused_busy: AtomicU64,
    fused_idle: AtomicU64,
}

struct Shared {
    cfg: ServeConfig,
    cache: SharedCopCache,
    queue: Mutex<VecDeque<u64>>,
    queue_cv: Condvar,
    conns: Mutex<VecDeque<TcpStream>>,
    conns_cv: Condvar,
    jobs: Mutex<HashMap<u64, Job>>,
    next_id: AtomicU64,
    counters: JobCounters,
    shutdown: AtomicBool,
}

/// A running server. Dropping it (or calling
/// [`shutdown`](Server::shutdown)) stops every thread and joins them.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the pools, and returns the running server.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let http_threads = cfg.http_threads.max(1);
        let shared = Arc::new(Shared {
            cache: SharedCopCache::new(cfg.cache),
            cfg,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            conns: Mutex::new(VecDeque::new()),
            conns_cv: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            counters: JobCounters::default(),
            shutdown: AtomicBool::new(false),
        });

        let mut threads = Vec::with_capacity(workers + http_threads + 1);
        for i in 0..workers {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("adis-serve-worker-{i}"))
                    .spawn(move || solver_worker(&shared))?,
            );
        }
        for i in 0..http_threads {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("adis-serve-http-{i}"))
                    .spawn(move || http_worker(&shared))?,
            );
        }
        {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("adis-serve-accept".to_string())
                    .spawn(move || accept_loop(&listener, &shared))?,
            );
        }
        Ok(Server {
            addr,
            shared,
            threads,
        })
    }

    /// The bound address (resolves port `0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared cross-request cache, for inspection.
    pub fn cache(&self) -> &SharedCopCache {
        &self.shared.cache
    }

    /// Stops accepting, drains nothing (queued jobs are abandoned), and
    /// joins every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.queue_cv.notify_all();
        self.shared.conns_cv.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let mut conns = shared.conns.lock().unwrap();
                conns.push_back(stream);
                shared.conns_cv.notify_one();
            }
            Err(_) => {
                // Transient accept failure (e.g. fd exhaustion): back off
                // rather than spin.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn http_worker(shared: &Shared) {
    loop {
        let stream = {
            let mut conns = shared.conns.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(stream) = conns.pop_front() {
                    break stream;
                }
                conns = shared.conns_cv.wait(conns).unwrap();
            }
        };
        handle_connection(shared, stream);
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let request = match http::read_request(&mut stream) {
        Ok(request) => request,
        Err(ReadError::Bad(status, message)) => {
            shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_response(&mut stream, status, &error_body(message));
            return;
        }
        Err(ReadError::Io(_)) => return,
    };
    let (status, body) = route(shared, &request);
    if !(200..300).contains(&status) && status != 429 {
        shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
    }
    let _ = http::write_response(&mut stream, status, &body);
}

fn error_body(message: &str) -> Json {
    Json::Obj(vec![("error".to_string(), Json::str(message))])
}

fn route(shared: &Shared, request: &Request) -> (u16, Json) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/jobs") => submit(shared, &request.body),
        ("GET", "/v1/jobs") | ("PUT" | "DELETE" | "PATCH", "/v1/jobs") => {
            (405, error_body("use POST /v1/jobs"))
        }
        ("GET", "/v1/healthz") => (
            200,
            Json::Obj(vec![
                ("ok".to_string(), Json::Bool(true)),
                (
                    "workers".to_string(),
                    Json::Num(shared.cfg.workers.max(1) as f64),
                ),
            ]),
        ),
        ("GET", "/v1/stats") => (200, stats_body(shared)),
        ("GET", path) if path.starts_with("/v1/jobs/") => job_status(shared, path),
        (_, path) if path.starts_with("/v1/jobs/") => {
            (405, error_body("use GET /v1/jobs/<id>"))
        }
        _ => (404, error_body("no such endpoint")),
    }
}

fn submit(shared: &Shared, body: &[u8]) -> (u16, Json) {
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => return (400, error_body("request body must be UTF-8 JSON")),
    };
    let parsed = match Json::parse(text) {
        Ok(parsed) => parsed,
        Err(e) => return (400, error_body(&e.to_string())),
    };
    let spec = match JobSpec::from_json(&parsed) {
        Ok(spec) => spec,
        Err(message) => return (400, error_body(&message)),
    };

    // Admission control: the waiting line is bounded, full means 429.
    let mut queue = shared.queue.lock().unwrap();
    if queue.len() >= shared.cfg.queue_depth {
        shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
        return (
            429,
            Json::Obj(vec![
                ("error".to_string(), Json::str("queue full, retry later")),
                (
                    "queue_depth".to_string(),
                    Json::Num(shared.cfg.queue_depth as f64),
                ),
            ]),
        );
    }
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    shared.jobs.lock().unwrap().insert(
        id,
        Job {
            spec,
            submitted: Instant::now(),
            state: JobState::Queued,
        },
    );
    queue.push_back(id);
    drop(queue);
    shared.queue_cv.notify_one();
    shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
    (
        202,
        Json::Obj(vec![
            ("id".to_string(), Json::Num(id as f64)),
            ("status".to_string(), Json::str("queued")),
            (
                "status_url".to_string(),
                Json::str(format!("/v1/jobs/{id}")),
            ),
        ]),
    )
}

fn job_status(shared: &Shared, path: &str) -> (u16, Json) {
    let id: u64 = match path["/v1/jobs/".len()..].parse() {
        Ok(id) => id,
        Err(_) => return (404, error_body("no such job")),
    };
    let jobs = shared.jobs.lock().unwrap();
    let Some(job) = jobs.get(&id) else {
        return (404, error_body("no such job"));
    };
    let mut fields = vec![("id".to_string(), Json::Num(id as f64))];
    match &job.state {
        JobState::Queued => fields.push(("status".to_string(), Json::str("queued"))),
        JobState::Running => fields.push(("status".to_string(), Json::str("running"))),
        JobState::TimedOut => fields.push(("status".to_string(), Json::str("timed_out"))),
        JobState::Failed(message) => {
            fields.push(("status".to_string(), Json::str("failed")));
            fields.push(("error".to_string(), Json::str(message)));
        }
        JobState::Done(result) => {
            fields.push(("status".to_string(), Json::str("done")));
            fields.push(("result".to_string(), result_body(result)));
        }
    }
    (200, Json::Obj(fields))
}

fn result_body(result: &JobResult) -> Json {
    Json::Obj(vec![
        ("med".to_string(), Json::Num(result.med)),
        ("er".to_string(), Json::Num(result.er)),
        ("objective".to_string(), Json::Num(result.objective)),
        ("solver".to_string(), Json::str(result.solver.as_str())),
        (
            "within_budget".to_string(),
            result
                .within_budget
                .map(Json::Bool)
                .unwrap_or(Json::Null),
        ),
        ("lut_bits".to_string(), Json::Num(result.lut_bits as f64)),
        (
            "direct_bits".to_string(),
            Json::Num(result.direct_bits as f64),
        ),
        ("cop_solves".to_string(), Json::Num(result.cop_solves as f64)),
        ("cache_hits".to_string(), Json::Num(result.cache_hits as f64)),
        (
            "cache_misses".to_string(),
            Json::Num(result.cache_misses as f64),
        ),
        (
            "sb_iterations".to_string(),
            Json::Num(result.sb_iterations as f64),
        ),
        (
            "queue_seconds".to_string(),
            Json::Num(result.queue_seconds),
        ),
        (
            "solve_seconds".to_string(),
            Json::Num(result.solve_seconds),
        ),
    ])
}

fn stats_body(shared: &Shared) -> Json {
    let queued = shared.queue.lock().unwrap().len();
    let cache = shared.cache.stats();
    let c = &shared.counters;
    Json::Obj(vec![
        (
            "queue".to_string(),
            Json::Obj(vec![
                (
                    "depth".to_string(),
                    Json::Num(shared.cfg.queue_depth as f64),
                ),
                ("queued".to_string(), Json::Num(queued as f64)),
                (
                    "running".to_string(),
                    Json::Num(c.running.load(Ordering::Relaxed) as f64),
                ),
            ]),
        ),
        (
            "jobs".to_string(),
            Json::Obj(vec![
                (
                    "accepted".to_string(),
                    Json::Num(c.accepted.load(Ordering::Relaxed) as f64),
                ),
                (
                    "rejected".to_string(),
                    Json::Num(c.rejected.load(Ordering::Relaxed) as f64),
                ),
                (
                    "completed".to_string(),
                    Json::Num(c.completed.load(Ordering::Relaxed) as f64),
                ),
                (
                    "failed".to_string(),
                    Json::Num(c.failed.load(Ordering::Relaxed) as f64),
                ),
                (
                    "timed_out".to_string(),
                    Json::Num(c.timed_out.load(Ordering::Relaxed) as f64),
                ),
            ]),
        ),
        (
            "http".to_string(),
            Json::Obj(vec![(
                "bad_requests".to_string(),
                Json::Num(c.bad_requests.load(Ordering::Relaxed) as f64),
            )]),
        ),
        (
            "fused".to_string(),
            Json::Obj(vec![
                (
                    "batches".to_string(),
                    Json::Num(c.fused_batches.load(Ordering::Relaxed) as f64),
                ),
                (
                    "units".to_string(),
                    Json::Num(c.fused_units.load(Ordering::Relaxed) as f64),
                ),
                (
                    "refills".to_string(),
                    Json::Num(c.fused_refills.load(Ordering::Relaxed) as f64),
                ),
                ("occupancy".to_string(), {
                    let busy = c.fused_busy.load(Ordering::Relaxed);
                    let idle = c.fused_idle.load(Ordering::Relaxed);
                    Json::Num(if busy + idle == 0 {
                        1.0
                    } else {
                        busy as f64 / (busy + idle) as f64
                    })
                }),
            ]),
        ),
        (
            "cache".to_string(),
            Json::Obj(vec![
                ("hits".to_string(), Json::Num(cache.hits as f64)),
                ("misses".to_string(), Json::Num(cache.misses as f64)),
                (
                    "insertions".to_string(),
                    Json::Num(cache.insertions as f64),
                ),
                ("evictions".to_string(), Json::Num(cache.evictions as f64)),
                ("entries".to_string(), Json::Num(cache.entries as f64)),
                (
                    "capacity".to_string(),
                    Json::Num(shared.cache.capacity() as f64),
                ),
                ("hit_rate".to_string(), Json::Num(cache.hit_rate())),
            ]),
        ),
    ])
}

fn solver_worker(shared: &Shared) {
    loop {
        let id = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = queue.pop_front() {
                    break id;
                }
                queue = shared.queue_cv.wait(queue).unwrap();
            }
        };
        run_job(shared, id);
    }
}

fn run_job(shared: &Shared, id: u64) {
    let (spec, submitted) = {
        let mut jobs = shared.jobs.lock().unwrap();
        let Some(job) = jobs.get_mut(&id) else { return };
        // First half of the cooperative timeout: a job that aged out in
        // the queue is not worth solving.
        if job.submitted.elapsed() >= shared.cfg.job_timeout {
            job.state = JobState::TimedOut;
            shared.counters.timed_out.fetch_add(1, Ordering::Relaxed);
            return;
        }
        job.state = JobState::Running;
        (job.spec.clone(), job.submitted)
    };
    shared.counters.running.fetch_add(1, Ordering::Relaxed);
    let queue_seconds = submitted.elapsed().as_secs_f64();

    let cache = shared.cache.clone();
    let solve_start = Instant::now();
    // Mid-solve half of the cooperative timeout: whatever budget the
    // queue left is the solve's deadline, so a long decomposition unwinds
    // at its next poll point instead of running to completion first.
    let solve_budget = shared.cfg.job_timeout.saturating_sub(submitted.elapsed());
    let solved = catch_unwind(AssertUnwindSafe(|| {
        let function = spec.function();
        let mut recorder = Recorder::new().keep_trajectory(false);
        let framework = Framework::new(spec.mode, spec.bound_size)
            .partitions(spec.partitions)
            .rounds(spec.rounds)
            .seed(spec.seed)
            .parallel(false)
            .deadline(solve_budget)
            .shared_cache(cache);
        let framework = match spec.solver {
            SolverChoice::Ising => framework,
            SolverChoice::Portfolio => framework.solver(PortfolioSolver::standard()),
            SolverChoice::Exact => {
                framework.solver(CopSolverKind::Exact { time_limit: None })
            }
            SolverChoice::Dalta => {
                framework.solver(CopSolverKind::DaltaHeuristic { restarts: 8 })
            }
            SolverChoice::Ba => framework.solver(CopSolverKind::Ba(BaParams::default())),
            SolverChoice::Dsb16 => framework.solver(
                IsingCopSolver::new().precision(KernelPrecision::I16),
            ),
            SolverChoice::Partitioned => {
                let mut solver = PartitionedCopSolver::new();
                if let Some(b) = spec.block_cols {
                    solver = solver.block_cols(b);
                }
                if let Some(s) = spec.coord_sweeps {
                    solver = solver.sweeps(s);
                }
                framework.solver(solver)
            }
        };
        framework
            .try_decompose_with(&function, &mut recorder)
            .map(|outcome| (outcome, recorder))
    }));
    let solve_seconds = solve_start.elapsed().as_secs_f64();
    shared.counters.running.fetch_sub(1, Ordering::Relaxed);

    let state = match solved {
        Err(_) => JobState::Failed("solver panicked".to_string()),
        Ok(Err(e)) => JobState::Failed(e.to_string()),
        Ok(Ok((outcome, recorder))) => {
            let c = &shared.counters;
            c.fused_batches
                .fetch_add(recorder.sb.fused_batches as u64, Ordering::Relaxed);
            c.fused_units
                .fetch_add(recorder.sb.fused_units as u64, Ordering::Relaxed);
            c.fused_refills
                .fetch_add(recorder.sb.fused_refills as u64, Ordering::Relaxed);
            c.fused_busy.fetch_add(recorder.sb.fused_busy, Ordering::Relaxed);
            c.fused_idle.fetch_add(recorder.sb.fused_idle, Ordering::Relaxed);
            // Second half of the cooperative timeout: late results are
            // reported as timed out, never as done.
            if submitted.elapsed() >= shared.cfg.job_timeout {
                JobState::TimedOut
            } else {
                let lut = outcome.to_lut();
                let objective = match spec.mode {
                    Mode::Joint => outcome.med,
                    Mode::Separate => outcome.er,
                };
                // The reported solver: the configured choice, except the
                // portfolio reports its modal per-COP race winner (ties
                // break to the alphabetically last name).
                let solver = match spec.solver {
                    SolverChoice::Portfolio => recorder
                        .winner_tally()
                        .into_iter()
                        .max_by_key(|(_, count)| *count)
                        .map(|(name, _)| name.to_string())
                        .unwrap_or_else(|| SolverChoice::Portfolio.name().to_string()),
                    other => other.name().to_string(),
                };
                let result = JobResult {
                    med: outcome.med,
                    er: outcome.er,
                    objective,
                    solver,
                    within_budget: spec.error_budget.map(|budget| objective <= budget),
                    lut_bits: lut.size_bits(),
                    direct_bits: lut.direct_size_bits(),
                    cop_solves: outcome.cop_solves as u64,
                    cache_hits: outcome.cache_hits as u64,
                    cache_misses: outcome.cache_misses as u64,
                    sb_iterations: outcome.sb_iterations as u64,
                    queue_seconds,
                    solve_seconds,
                };
                if let Some(dir) = &shared.cfg.report_dir {
                    write_job_report(dir, id, &spec, &result, &recorder);
                }
                JobState::Done(result)
            }
        }
    };
    match &state {
        JobState::Done(_) => &shared.counters.completed,
        JobState::TimedOut => &shared.counters.timed_out,
        _ => &shared.counters.failed,
    }
    .fetch_add(1, Ordering::Relaxed);
    if let Some(job) = shared.jobs.lock().unwrap().get_mut(&id) {
        job.state = state;
    }
}

fn write_job_report(
    dir: &PathBuf,
    id: u64,
    spec: &JobSpec,
    result: &JobResult,
    recorder: &Recorder,
) {
    let mut report = RunReport::new("serve", spec.seed);
    report.config("inputs", Json::Num(f64::from(spec.inputs)));
    report.config("outputs", Json::Num(f64::from(spec.outputs)));
    report.config("partitions", Json::Num(spec.partitions as f64));
    report.config("rounds", Json::Num(spec.rounds as f64));
    let mut cell = ReportCell::new(
        format!("job-{id}"),
        format!("{:?}", spec.mode),
        "adis-serve",
    )
    .absorb(recorder);
    cell.objective = result.objective;
    cell.seconds = result.solve_seconds;
    cell.extra
        .push(("queue_seconds".to_string(), Json::Num(result.queue_seconds)));
    report.push(cell);
    report.total_wall(Duration::from_secs_f64(
        result.queue_seconds + result.solve_seconds,
    ));
    if let Err(e) = report.write_unique(dir, format!("RUN_serve_j{id}")) {
        eprintln!("adis-serve: could not write report for job {id}: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            http_threads: 2,
            queue_depth: 8,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn starts_and_shuts_down_cleanly() {
        let server = Server::start(test_config()).unwrap();
        let addr = server.addr();
        assert_ne!(addr.port(), 0);
        server.shutdown();
    }

    #[test]
    fn routes_reject_unknown_paths_and_methods() {
        let server = Server::start(test_config()).unwrap();
        let timeout = Duration::from_secs(5);
        let (status, body) =
            http::request(server.addr(), "GET", "/nope", None, timeout).unwrap();
        assert_eq!(status, 404);
        assert!(body.get("error").is_some());
        let (status, _) =
            http::request(server.addr(), "DELETE", "/v1/jobs/1", None, timeout).unwrap();
        assert_eq!(status, 405);
        let (status, body) =
            http::request(server.addr(), "GET", "/v1/healthz", None, timeout).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.get("ok").and_then(Json::as_bool), Some(true));
        server.shutdown();
    }
}
