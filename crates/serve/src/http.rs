//! Just enough HTTP/1.1 to serve and consume the JSON job API.
//!
//! Hand-rolled for the same reason the telemetry JSON is: the build is
//! offline, so no `hyper`/`axum`/`reqwest`. The subset implemented here is
//! deliberately tiny and closed over what the API needs:
//!
//! - one request per connection (`Connection: close` on every response);
//! - request bodies are sized by `Content-Length` only (no chunked
//!   encoding) and capped at [`MAX_BODY_BYTES`];
//! - responses are always `application/json`.
//!
//! The [`request`] client helper speaks the same subset and is what
//! `adis-loadgen` and the integration tests use.

use adis_telemetry::Json;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Hard cap on request bodies (a 16-input table is well under this).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// Hard cap on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request: method, path, and raw body.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased by the peer, not normalized here).
    pub method: String,
    /// The request target, e.g. `/v1/jobs/3` (query strings are kept
    /// as-is; the API defines none).
    pub path: String,
    /// The request body, `Content-Length` bytes of it.
    pub body: Vec<u8>,
}

/// What went wrong reading a request, mapped to a response status.
#[derive(Debug)]
pub enum ReadError {
    /// Socket-level failure (including read timeouts); no response is
    /// possible.
    Io(io::Error),
    /// The request was malformed or oversized; respond with this status
    /// and message.
    Bad(u16, &'static str),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Reads one request from `stream`.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ReadError> {
    // Read until the end of the head, keeping whatever body bytes follow.
    let mut buf = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ReadError::Bad(431, "request head too large"));
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ReadError::Bad(400, "connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ReadError::Bad(400, "non-UTF-8 request head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || !path.starts_with('/') {
        return Err(ReadError::Bad(400, "malformed request line"));
    }

    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| ReadError::Bad(400, "bad Content-Length"))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::Bad(413, "request body too large"));
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ReadError::Bad(400, "connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request { method, path, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes a JSON response and flushes; the connection is then done
/// (`Connection: close`).
pub fn write_response(stream: &mut TcpStream, status: u16, body: &Json) -> io::Result<()> {
    let payload = body.render();
    let head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        reason(status),
        payload.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Performs one blocking JSON request against `addr` and returns
/// `(status, parsed body)`.
///
/// This is the client side of the same one-request-per-connection subset
/// the server speaks. `timeout` bounds connect, read, and write
/// individually.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&Json>,
    timeout: Duration,
) -> io::Result<(u16, Json)> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let payload = body.map(Json::render).unwrap_or_default();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        payload.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()?;

    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let head_end = find_head_end(&response)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "truncated response"))?;
    let head = std::str::from_utf8(&response[..head_end])
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let body_text = std::str::from_utf8(&response[head_end + 4..])
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let body = Json::parse(body_text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// One round trip through both halves: the client helper talks to a
    /// thread running the server-side parser.
    #[test]
    fn client_and_server_sides_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/v1/jobs");
            let echoed = Json::parse(std::str::from_utf8(&req.body).unwrap()).unwrap();
            write_response(&mut stream, 202, &echoed).unwrap();
        });

        let body = Json::Obj(vec![("x".to_string(), Json::Num(3.0))]);
        let (status, echoed) = request(
            addr,
            "POST",
            "/v1/jobs",
            Some(&body),
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(status, 202);
        assert_eq!(echoed, body);
        server.join().unwrap();
    }

    #[test]
    fn oversized_content_length_is_rejected_with_413() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            match read_request(&mut stream) {
                Err(ReadError::Bad(status, _)) => assert_eq!(status, 413),
                other => panic!("expected Bad(413), got {other:?}"),
            }
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(
                format!(
                    "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                    MAX_BODY_BYTES + 1
                )
                .as_bytes(),
            )
            .unwrap();
        server.join().unwrap();
    }
}
