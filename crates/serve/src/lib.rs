//! # adis-serve — decomposition as a service
//!
//! Runs the `adis-core` decomposition framework behind a small HTTP/JSON
//! job API, with a **shared cross-request COP cache**: concurrent and
//! repeated submissions of related functions reuse each other's component
//! COP solutions (bit-identically — see `adis_core::SharedCopCache`)
//! instead of re-solving them.
//!
//! Everything is dependency-free by construction: the HTTP server and
//! client ([`http`]), the JSON codec (`adis-telemetry`), and the thread
//! pools are hand-rolled, because the reproduction builds offline.
//!
//! The crate ships two binaries:
//!
//! - **`adis-serve`** — the server. Accepts decomposition jobs
//!   (`POST /v1/jobs`), runs them on a bounded worker pool with admission
//!   control (`429` when the queue is full) and a cooperative per-job
//!   timeout, and exposes results plus per-request telemetry through
//!   status polling (`GET /v1/jobs/<id>`) and an aggregate stats endpoint
//!   (`GET /v1/stats`).
//! - **`adis-loadgen`** — a closed-loop load generator over a seeded
//!   corpus of related functions, reporting p50/p99 latency, throughput
//!   and cross-request cache hit rate per concurrency level into
//!   `results/BENCH_serve.json`.
//!
//! The operator-facing reference (endpoints, schema, curl examples,
//! sizing guidance) lives in `docs/SERVING.md`; `DESIGN.md` §5.8 covers
//! the architecture and the cache-correctness argument.
//!
//! # Embedding
//!
//! The server is a library type, so tests (and the loadgen's self-hosting
//! mode) can run one in-process:
//!
//! ```
//! use adis_serve::{Server, ServeConfig, http};
//! use adis_telemetry::Json;
//! use std::time::Duration;
//!
//! let server = Server::start(ServeConfig {
//!     addr: "127.0.0.1:0".to_string(), // let the OS pick a port
//!     ..ServeConfig::default()
//! }).unwrap();
//! let (status, body) = http::request(
//!     server.addr(), "GET", "/v1/healthz", None, Duration::from_secs(5),
//! ).unwrap();
//! assert_eq!(status, 200);
//! assert_eq!(body.get("ok").and_then(Json::as_bool), Some(true));
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod corpus;
pub mod http;
pub mod protocol;
mod server;

pub use protocol::{JobSpec, SolverChoice};
pub use server::{ServeConfig, Server};
