//! The wire schema of the job API: what a decomposition job request looks
//! like and how it is validated into a [`JobSpec`].
//!
//! A request body is a JSON object (see `docs/SERVING.md` for the operator
//! view):
//!
//! ```json
//! {
//!   "inputs": 6,
//!   "outputs": 4,
//!   "table": [0, 1, 1, 2],
//!   "mode": "separate",
//!   "bound_size": 3,
//!   "partitions": 6,
//!   "rounds": 1,
//!   "seed": 7,
//!   "error_budget": 0.05,
//!   "solver": "portfolio"
//! }
//! ```
//!
//! `inputs`, `outputs`, `table` and `mode` are required; the rest have the
//! defaults below. `solver` picks the core-COP solver from a fixed roster
//! (see [`SolverChoice`]); omitted means the paper's Ising solver. With
//! `"solver": "partitioned"` two optional tuning fields are accepted —
//! `block_cols` (column-block width) and `coord_sweeps` (coordination-sweep
//! budget); sending either with any other solver is a 400. `table` lists
//! the function word-by-word: entry `p` is
//! the output word for input pattern `p`, so it must have exactly
//! `2^inputs` entries, each below `2^outputs`. Validation is strict — any
//! unknown field, wrong type, or out-of-range value is a 400, never a
//! silently patched job.

use adis_core::Mode;
use adis_telemetry::Json;

/// Hard cap on `inputs` (a 16-input table is already 65 536 words).
pub const MAX_INPUTS: u32 = 16;
/// Hard cap on `outputs` (output words are stored in `u64`s downstream,
/// but serving bounds them harder to keep tables sane).
pub const MAX_OUTPUTS: u32 = 16;
/// Hard cap on `partitions` per output per round.
pub const MAX_PARTITIONS: usize = 4096;
/// Hard cap on `rounds`.
pub const MAX_ROUNDS: usize = 64;
/// Hard cap on `block_cols` (a 16-input bound set has at most 2^15
/// columns, so anything wider than 2^16 is certainly a mistake).
pub const MAX_BLOCK_COLS: usize = 65_536;
/// Hard cap on `coord_sweeps`.
pub const MAX_COORD_SWEEPS: usize = 64;

/// The core-COP solver a job may request via the optional `"solver"`
/// field. The wire names are the lowercase variant names; anything else
/// is a 400, per the crate's strict-validation rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverChoice {
    /// The paper's bSB Ising solver (the default when omitted).
    #[default]
    Ising,
    /// The raced solver portfolio (`adis_core::PortfolioSolver::standard`):
    /// bSB, SimCIM, DOCH and the DALTA heuristic racing per COP, first
    /// finisher cancelling the rest.
    Portfolio,
    /// Exact branch and bound (DALTA-ILP).
    Exact,
    /// The DALTA heuristic reconstruction.
    Dalta,
    /// The BA (simulated-annealing) reconstruction.
    Ba,
    /// The Ising solver on the reduced-precision i16 dSB kernel
    /// (`adis_core::KernelPrecision::I16`): fixed-point coupling field
    /// over integer sign masks, exact f64 objectives.
    Dsb16,
    /// The block-coordinate partitioned solver
    /// (`adis_core::PartitionedCopSolver`): the type vector is split into
    /// column blocks solved by coordinated inner bSB runs against frozen
    /// boundary terms — the large-`n` path. Tunable via the optional
    /// `block_cols` / `coord_sweeps` request fields.
    Partitioned,
}

impl SolverChoice {
    /// Every accepted wire name, in documentation order.
    pub const NAMES: [&'static str; 7] =
        ["portfolio", "ising", "exact", "dalta", "ba", "dsb16", "partitioned"];

    /// Parses a wire name (strict: unknown names are an error).
    pub fn parse(name: &str) -> Result<SolverChoice, String> {
        match name {
            "portfolio" => Ok(SolverChoice::Portfolio),
            "ising" => Ok(SolverChoice::Ising),
            "exact" => Ok(SolverChoice::Exact),
            "dalta" => Ok(SolverChoice::Dalta),
            "ba" => Ok(SolverChoice::Ba),
            "dsb16" => Ok(SolverChoice::Dsb16),
            "partitioned" => Ok(SolverChoice::Partitioned),
            other => Err(format!(
                "\"solver\" must be one of {:?}, got {other:?}",
                Self::NAMES
            )),
        }
    }

    /// The wire name (inverse of [`parse`](SolverChoice::parse)).
    pub fn name(self) -> &'static str {
        match self {
            SolverChoice::Portfolio => "portfolio",
            SolverChoice::Ising => "ising",
            SolverChoice::Exact => "exact",
            SolverChoice::Dalta => "dalta",
            SolverChoice::Ba => "ba",
            SolverChoice::Dsb16 => "dsb16",
            SolverChoice::Partitioned => "partitioned",
        }
    }
}

/// A validated decomposition job, ready to hand to the solver pool.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Input bit count `n` (table length is `2^n`).
    pub inputs: u32,
    /// Output bit count `m`.
    pub outputs: u32,
    /// The truth table, one output word per input pattern.
    pub table: Vec<u64>,
    /// Error mode minimized by the core COP.
    pub mode: Mode,
    /// Bound-set size `|B|`.
    pub bound_size: u32,
    /// Candidate partitions per output bit per round.
    pub partitions: usize,
    /// Refinement rounds.
    pub rounds: usize,
    /// Framework seed (shared-cache entries are namespaced by it).
    pub seed: u64,
    /// Optional acceptance threshold on the final objective (MED in
    /// joint mode, ER in separate mode); reported as `within_budget`.
    pub error_budget: Option<f64>,
    /// Which core-COP solver runs the job.
    pub solver: SolverChoice,
    /// Column-block width for the partitioned solver (only meaningful —
    /// and only accepted — with `solver: "partitioned"`).
    pub block_cols: Option<usize>,
    /// Coordination-sweep budget for the partitioned solver (only
    /// accepted with `solver: "partitioned"`).
    pub coord_sweeps: Option<usize>,
}

impl JobSpec {
    /// Parses and validates a request body.
    ///
    /// ```
    /// use adis_serve::protocol::JobSpec;
    /// use adis_telemetry::Json;
    ///
    /// let body = Json::parse(
    ///     r#"{"inputs":2,"outputs":1,"table":[0,1,1,0],"mode":"separate","bound_size":1}"#,
    /// ).unwrap();
    /// let spec = JobSpec::from_json(&body).unwrap();
    /// assert_eq!(spec.table, vec![0, 1, 1, 0]);
    /// assert!(JobSpec::from_json(&Json::parse("{}").unwrap()).is_err());
    /// ```
    pub fn from_json(body: &Json) -> Result<JobSpec, String> {
        let fields = body
            .as_obj()
            .ok_or_else(|| "request body must be a JSON object".to_string())?;
        for (key, _) in fields {
            if !matches!(
                key.as_str(),
                "inputs"
                    | "outputs"
                    | "table"
                    | "mode"
                    | "bound_size"
                    | "partitions"
                    | "rounds"
                    | "seed"
                    | "error_budget"
                    | "solver"
                    | "block_cols"
                    | "coord_sweeps"
            ) {
                return Err(format!("unknown field {key:?}"));
            }
        }

        let inputs = required_u64(body, "inputs")?;
        if inputs == 0 || inputs > u64::from(MAX_INPUTS) {
            return Err(format!("inputs must be in 1..={MAX_INPUTS}, got {inputs}"));
        }
        let inputs = inputs as u32;
        let outputs = required_u64(body, "outputs")?;
        if outputs == 0 || outputs > u64::from(MAX_OUTPUTS) {
            return Err(format!("outputs must be in 1..={MAX_OUTPUTS}, got {outputs}"));
        }
        let outputs = outputs as u32;

        let raw_table = body
            .get("table")
            .ok_or_else(|| "missing field \"table\"".to_string())?
            .as_arr()
            .ok_or_else(|| "\"table\" must be an array of integers".to_string())?;
        let expected = 1usize << inputs;
        if raw_table.len() != expected {
            return Err(format!(
                "\"table\" must have 2^inputs = {expected} entries, got {}",
                raw_table.len()
            ));
        }
        let limit = 1u64 << outputs;
        let mut table = Vec::with_capacity(expected);
        for (i, entry) in raw_table.iter().enumerate() {
            let word = entry
                .as_u64()
                .ok_or_else(|| format!("\"table\"[{i}] must be a non-negative integer"))?;
            if word >= limit {
                return Err(format!(
                    "\"table\"[{i}] = {word} does not fit in {outputs} output bits"
                ));
            }
            table.push(word);
        }

        let mode = match body
            .get("mode")
            .ok_or_else(|| "missing field \"mode\"".to_string())?
            .as_str()
        {
            Some("separate") => Mode::Separate,
            Some("joint") => Mode::Joint,
            Some(other) => {
                return Err(format!(
                    "\"mode\" must be \"separate\" or \"joint\", got {other:?}"
                ))
            }
            None => return Err("\"mode\" must be a string".to_string()),
        };

        let bound_size = optional_u64(body, "bound_size")?.unwrap_or(3);
        if bound_size == 0 || bound_size >= u64::from(inputs) {
            return Err(format!(
                "bound_size must be in 1..inputs (= {inputs}), got {bound_size}"
            ));
        }
        let bound_size = bound_size as u32;
        let partitions = optional_u64(body, "partitions")?.unwrap_or(6);
        if partitions == 0 || partitions > MAX_PARTITIONS as u64 {
            return Err(format!(
                "partitions must be in 1..={MAX_PARTITIONS}, got {partitions}"
            ));
        }
        let partitions = partitions as usize;
        let rounds = optional_u64(body, "rounds")?.unwrap_or(1);
        if rounds == 0 || rounds > MAX_ROUNDS as u64 {
            return Err(format!("rounds must be in 1..={MAX_ROUNDS}, got {rounds}"));
        }
        let rounds = rounds as usize;
        let seed = optional_u64(body, "seed")?.unwrap_or(0);

        let error_budget = match body.get("error_budget") {
            None | Some(Json::Null) => None,
            Some(v) => {
                let budget = v
                    .as_f64()
                    .filter(|b| b.is_finite() && *b >= 0.0)
                    .ok_or_else(|| {
                        "\"error_budget\" must be a non-negative number".to_string()
                    })?;
                Some(budget)
            }
        };

        let solver = match body.get("solver") {
            None | Some(Json::Null) => SolverChoice::default(),
            Some(v) => match v.as_str() {
                Some(name) => SolverChoice::parse(name)?,
                None => return Err("\"solver\" must be a string".to_string()),
            },
        };

        // The partitioned tuning knobs are strict like everything else:
        // accepting them alongside a solver that ignores them would be a
        // silently patched job.
        let block_cols = optional_u64(body, "block_cols")?;
        let coord_sweeps = optional_u64(body, "coord_sweeps")?;
        if (block_cols.is_some() || coord_sweeps.is_some())
            && solver != SolverChoice::Partitioned
        {
            return Err(format!(
                "\"block_cols\"/\"coord_sweeps\" require \"solver\": \"partitioned\", \
                 got {:?}",
                solver.name()
            ));
        }
        let block_cols = match block_cols {
            None => None,
            Some(b) => {
                if b == 0 || b > MAX_BLOCK_COLS as u64 {
                    return Err(format!(
                        "block_cols must be in 1..={MAX_BLOCK_COLS}, got {b}"
                    ));
                }
                Some(b as usize)
            }
        };
        let coord_sweeps = match coord_sweeps {
            None => None,
            Some(s) => {
                if s == 0 || s > MAX_COORD_SWEEPS as u64 {
                    return Err(format!(
                        "coord_sweeps must be in 1..={MAX_COORD_SWEEPS}, got {s}"
                    ));
                }
                Some(s as usize)
            }
        };

        Ok(JobSpec {
            inputs,
            outputs,
            table,
            mode,
            bound_size,
            partitions,
            rounds,
            seed,
            error_budget,
            solver,
            block_cols,
            coord_sweeps,
        })
    }

    /// Renders the spec back into a request body (inverse of
    /// [`from_json`](JobSpec::from_json)) — used by `adis-loadgen` and the
    /// integration tests to build requests from in-memory functions.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("inputs".to_string(), Json::Num(f64::from(self.inputs))),
            ("outputs".to_string(), Json::Num(f64::from(self.outputs))),
            (
                "table".to_string(),
                Json::Arr(self.table.iter().map(|&w| Json::Num(w as f64)).collect()),
            ),
            (
                "mode".to_string(),
                Json::str(match self.mode {
                    Mode::Separate => "separate",
                    Mode::Joint => "joint",
                }),
            ),
            ("bound_size".to_string(), Json::Num(f64::from(self.bound_size))),
            ("partitions".to_string(), Json::Num(self.partitions as f64)),
            ("rounds".to_string(), Json::Num(self.rounds as f64)),
            ("seed".to_string(), Json::Num(self.seed as f64)),
        ];
        if let Some(budget) = self.error_budget {
            fields.push(("error_budget".to_string(), Json::Num(budget)));
        }
        fields.push(("solver".to_string(), Json::str(self.solver.name())));
        if let Some(b) = self.block_cols {
            fields.push(("block_cols".to_string(), Json::Num(b as f64)));
        }
        if let Some(s) = self.coord_sweeps {
            fields.push(("coord_sweeps".to_string(), Json::Num(s as f64)));
        }
        Json::Obj(fields)
    }

    /// The function this job decomposes.
    pub fn function(&self) -> adis_boolfn::MultiOutputFn {
        adis_boolfn::MultiOutputFn::from_word_fn(self.inputs, self.outputs, |p| {
            self.table[p as usize]
        })
    }
}

fn required_u64(body: &Json, key: &str) -> Result<u64, String> {
    body.get(key)
        .ok_or_else(|| format!("missing field {key:?}"))?
        .as_u64()
        .ok_or_else(|| format!("{key:?} must be a non-negative integer"))
}

fn optional_u64(body: &Json, key: &str) -> Result<Option<u64>, String> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("{key:?} must be a non-negative integer")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid() -> Json {
        Json::parse(
            r#"{"inputs":3,"outputs":2,"table":[0,1,2,3,0,1,2,3],
                "mode":"joint","bound_size":2,"partitions":3,"rounds":2,
                "seed":9,"error_budget":0.25}"#,
        )
        .unwrap()
    }

    #[test]
    fn parses_a_full_request_and_round_trips() {
        let spec = JobSpec::from_json(&valid()).unwrap();
        assert_eq!(spec.inputs, 3);
        assert_eq!(spec.mode, Mode::Joint);
        assert_eq!(spec.error_budget, Some(0.25));
        assert_eq!(JobSpec::from_json(&spec.to_json()).unwrap(), spec);
        let f = spec.function();
        assert_eq!(f.inputs(), 3);
        assert_eq!(f.eval_word(2), 2);
    }

    #[test]
    fn applies_defaults() {
        let body = Json::parse(
            r#"{"inputs":2,"outputs":1,"table":[0,1,1,0],"mode":"separate","bound_size":1}"#,
        )
        .unwrap();
        let spec = JobSpec::from_json(&body).unwrap();
        assert_eq!(spec.partitions, 6);
        assert_eq!(spec.rounds, 1);
        assert_eq!(spec.seed, 0);
        assert_eq!(spec.error_budget, None);
        assert_eq!(spec.solver, SolverChoice::Ising);
    }

    #[test]
    fn solver_names_round_trip_and_unknowns_are_rejected() {
        for name in SolverChoice::NAMES {
            let choice = SolverChoice::parse(name).unwrap();
            assert_eq!(choice.name(), name);
            let spec =
                JobSpec::from_json(&patch(valid(), "solver", Json::str(name))).unwrap();
            assert_eq!(spec.solver, choice);
            assert_eq!(JobSpec::from_json(&spec.to_json()).unwrap(), spec);
        }
        let err = JobSpec::from_json(&patch(valid(), "solver", Json::str("warp")))
            .unwrap_err();
        assert!(err.contains("portfolio"), "error must list the roster: {err}");
        assert!(
            JobSpec::from_json(&patch(valid(), "solver", Json::Num(3.0))).is_err(),
            "non-string solver must be rejected"
        );
    }

    #[test]
    fn partitioned_tuning_fields_round_trip_and_are_gated() {
        // Accepted (and round-tripped) with the partitioned solver…
        let body = patch(
            patch(
                patch(valid(), "solver", Json::str("partitioned")),
                "block_cols",
                Json::Num(4.0),
            ),
            "coord_sweeps",
            Json::Num(3.0),
        );
        let spec = JobSpec::from_json(&body).unwrap();
        assert_eq!(spec.solver, SolverChoice::Partitioned);
        assert_eq!(spec.block_cols, Some(4));
        assert_eq!(spec.coord_sweeps, Some(3));
        assert_eq!(JobSpec::from_json(&spec.to_json()).unwrap(), spec);

        // …optional (defaults kick in downstream)…
        let spec =
            JobSpec::from_json(&patch(valid(), "solver", Json::str("partitioned"))).unwrap();
        assert_eq!(spec.block_cols, None);
        assert_eq!(spec.coord_sweeps, None);

        // …and rejected with any other solver, out of range, or mistyped.
        for (label, body) in [
            (
                "block_cols without partitioned",
                patch(valid(), "block_cols", Json::Num(4.0)),
            ),
            (
                "coord_sweeps with the ising solver",
                patch(
                    patch(valid(), "solver", Json::str("ising")),
                    "coord_sweeps",
                    Json::Num(2.0),
                ),
            ),
            (
                "zero block_cols",
                patch(
                    patch(valid(), "solver", Json::str("partitioned")),
                    "block_cols",
                    Json::Num(0.0),
                ),
            ),
            (
                "oversized coord_sweeps",
                patch(
                    patch(valid(), "solver", Json::str("partitioned")),
                    "coord_sweeps",
                    Json::Num((MAX_COORD_SWEEPS + 1) as f64),
                ),
            ),
            (
                "non-integer block_cols",
                patch(
                    patch(valid(), "solver", Json::str("partitioned")),
                    "block_cols",
                    Json::Num(2.5),
                ),
            ),
        ] {
            assert!(JobSpec::from_json(&body).is_err(), "{label} must be rejected");
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        let cases: Vec<(&str, Json)> = vec![
            ("not an object", Json::Arr(vec![])),
            ("unknown field", patch(valid(), "extra", Json::Num(1.0))),
            ("zero inputs", patch(valid(), "inputs", Json::Num(0.0))),
            ("oversized inputs", patch(valid(), "inputs", Json::Num(40.0))),
            ("table too short", patch(valid(), "table", Json::Arr(vec![Json::Num(0.0)]))),
            (
                "word overflows outputs",
                patch(valid(), "table", {
                    let mut t = vec![Json::Num(0.0); 8];
                    t[3] = Json::Num(4.0);
                    Json::Arr(t)
                }),
            ),
            ("bad mode", patch(valid(), "mode", Json::str("fast"))),
            ("bound too large", patch(valid(), "bound_size", Json::Num(3.0))),
            ("zero partitions", patch(valid(), "partitions", Json::Num(0.0))),
            ("zero rounds", patch(valid(), "rounds", Json::Num(0.0))),
            (
                "negative budget",
                patch(valid(), "error_budget", Json::Num(-1.0)),
            ),
            ("non-integer seed", patch(valid(), "seed", Json::Num(1.5))),
        ];
        for (label, body) in cases {
            assert!(JobSpec::from_json(&body).is_err(), "{label} must be rejected");
        }
    }

    fn patch(body: Json, key: &str, value: Json) -> Json {
        let Json::Obj(mut fields) = body else { unreachable!() };
        match fields.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = value,
            None => fields.push((key.to_string(), value)),
        }
        Json::Obj(fields)
    }
}
