//! `adis-loadgen` — closed-loop load generator for `adis-serve`.
//!
//! ```text
//! adis-loadgen [--addr HOST:PORT] [--levels 1,2,4,8] [--requests N]
//!              [--corpus K] [--inputs N] [--outputs M] [--mode separate|joint]
//!              [--bound N] [--partitions P] [--rounds R] [--seed S]
//!              [--workers N] [--out DIR]
//! ```
//!
//! Runs one pass per concurrency level: that many closed-loop workers,
//! each submitting jobs drawn round-robin from a seeded corpus of related
//! functions (see `adis_serve::corpus`) and polling until completion
//! before submitting the next. `429` rejections back off and retry — the
//! load is closed-loop, so admission control shapes it instead of
//! dropping it.
//!
//! Per level it reports completed jobs, throughput, p50/p99 latency
//! (submit → done, polling overhead included) and the *cross-request*
//! cache hit rate (shared-tier hits / lookups during the level), then
//! writes everything to `<out>/BENCH_serve.json` (a deterministic name,
//! so CI can archive it).
//!
//! Without `--addr` it self-hosts: an in-process [`Server`] on an
//! OS-picked port with `--workers` solver threads, so the benchmark is
//! one command.

use adis_core::Mode;
use adis_serve::corpus::{corpus, spec_for};
use adis_serve::{http, ServeConfig, Server};
use adis_telemetry::{Json, ReportCell, RunReport};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

struct Args {
    addr: Option<String>,
    levels: Vec<usize>,
    requests: usize,
    corpus_size: usize,
    inputs: u32,
    outputs: u32,
    mode: Mode,
    bound: u32,
    partitions: usize,
    rounds: usize,
    seed: u64,
    workers: usize,
    out: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            addr: None,
            levels: vec![1, 2, 4],
            requests: 24,
            corpus_size: 6,
            inputs: 6,
            outputs: 4,
            mode: Mode::Separate,
            bound: 3,
            partitions: 6,
            rounds: 1,
            seed: 7,
            workers: 4,
            out: "results".to_string(),
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        let parse = |name: &str, v: String| -> Result<usize, String> {
            v.parse().map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--levels" => {
                args.levels = value("--levels")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("--levels: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--requests" => args.requests = parse("--requests", value("--requests")?)?,
            "--corpus" => args.corpus_size = parse("--corpus", value("--corpus")?)?,
            "--inputs" => args.inputs = parse("--inputs", value("--inputs")?)? as u32,
            "--outputs" => args.outputs = parse("--outputs", value("--outputs")?)? as u32,
            "--mode" => {
                args.mode = match value("--mode")?.as_str() {
                    "separate" => Mode::Separate,
                    "joint" => Mode::Joint,
                    other => return Err(format!("--mode must be separate|joint, got {other}")),
                };
            }
            "--bound" => args.bound = parse("--bound", value("--bound")?)? as u32,
            "--partitions" => args.partitions = parse("--partitions", value("--partitions")?)?,
            "--rounds" => args.rounds = parse("--rounds", value("--rounds")?)?,
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--workers" => args.workers = parse("--workers", value("--workers")?)?,
            "--out" => args.out = value("--out")?,
            "--help" | "-h" => {
                println!(
                    "usage: adis-loadgen [--addr HOST:PORT] [--levels 1,2,4] [--requests N]\n\
                     \u{20}                  [--corpus K] [--inputs N] [--outputs M]\n\
                     \u{20}                  [--mode separate|joint] [--bound N] [--partitions P]\n\
                     \u{20}                  [--rounds R] [--seed S] [--workers N] [--out DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.levels.is_empty() || args.levels.contains(&0) {
        return Err("--levels must list positive concurrency levels".to_string());
    }
    if args.requests == 0 || args.corpus_size == 0 {
        return Err("--requests and --corpus must be at least 1".to_string());
    }
    Ok(args)
}

const HTTP_TIMEOUT: Duration = Duration::from_secs(10);

/// One completed job as seen by a closed-loop worker.
struct Completion {
    latency: Duration,
}

fn cache_counters(addr: SocketAddr) -> (u64, u64) {
    let stats = http::request(addr, "GET", "/v1/stats", None, HTTP_TIMEOUT)
        .map(|(_, body)| body)
        .unwrap_or(Json::Null);
    let cache = stats.get("cache");
    let get = |key| {
        cache
            .and_then(|c| c.get(key))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    (get("hits"), get("misses"))
}

/// Submits one job and polls it to completion; retries on 429.
fn run_one(addr: SocketAddr, body: &Json) -> Result<Completion, String> {
    let started = Instant::now();
    let id = loop {
        let (status, response) = http::request(addr, "POST", "/v1/jobs", Some(body), HTTP_TIMEOUT)
            .map_err(|e| format!("submit: {e}"))?;
        match status {
            202 => {
                break response
                    .get("id")
                    .and_then(Json::as_u64)
                    .ok_or("submit response missing id")?
            }
            429 => std::thread::sleep(Duration::from_millis(5)),
            other => {
                return Err(format!(
                    "submit rejected with {other}: {}",
                    response.render()
                ))
            }
        }
        if started.elapsed() > Duration::from_secs(120) {
            return Err("gave up after 120 s of 429s".to_string());
        }
    };
    let path = format!("/v1/jobs/{id}");
    loop {
        let (status, response) = http::request(addr, "GET", &path, None, HTTP_TIMEOUT)
            .map_err(|e| format!("poll: {e}"))?;
        if status != 200 {
            return Err(format!("poll got {status}: {}", response.render()));
        }
        match response.get("status").and_then(Json::as_str) {
            Some("done") => {
                return Ok(Completion {
                    latency: started.elapsed(),
                })
            }
            Some("failed") | Some("timed_out") => {
                return Err(format!("job {id} ended as {}", response.render()))
            }
            _ => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ms.len() as f64 * p).ceil() as usize).clamp(1, sorted_ms.len());
    sorted_ms[rank - 1]
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("adis-loadgen: {e}");
            std::process::exit(2);
        }
    };

    // Self-host unless pointed at a running server.
    let (addr, hosted): (SocketAddr, Option<Server>) = match &args.addr {
        Some(addr) => match addr.parse() {
            Ok(addr) => (addr, None),
            Err(e) => {
                eprintln!("adis-loadgen: --addr: {e}");
                std::process::exit(2);
            }
        },
        None => {
            let server = Server::start(ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: args.workers.max(1),
                http_threads: args.levels.iter().copied().max().unwrap_or(1).min(8),
                ..ServeConfig::default()
            })
            .unwrap_or_else(|e| {
                eprintln!("adis-loadgen: could not self-host: {e}");
                std::process::exit(1);
            });
            let addr = server.addr();
            println!("adis-loadgen: self-hosting adis-serve on {addr} ({} workers)", args.workers);
            (addr, Some(server))
        }
    };

    let functions = corpus(args.seed, args.corpus_size, args.inputs, args.outputs);
    let bodies: Vec<Json> = functions
        .iter()
        .map(|f| {
            spec_for(
                f,
                args.mode,
                args.bound,
                args.partitions,
                args.rounds,
                args.seed,
            )
            .to_json()
        })
        .collect();

    let mut report = RunReport::new("serve-bench", args.seed);
    report.config("requests_per_level", Json::Num(args.requests as f64));
    report.config("corpus", Json::Num(args.corpus_size as f64));
    report.config("inputs", Json::Num(f64::from(args.inputs)));
    report.config("outputs", Json::Num(f64::from(args.outputs)));
    report.config("partitions", Json::Num(args.partitions as f64));
    report.config("rounds", Json::Num(args.rounds as f64));

    let run_start = Instant::now();
    let mut total_completed = 0usize;
    for &level in &args.levels {
        let (hits_before, misses_before) = cache_counters(addr);
        let level_start = Instant::now();
        let results: Vec<Result<Completion, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..level)
                .map(|w| {
                    let bodies = &bodies;
                    scope.spawn(move || {
                        // Each worker draws a different phase of the
                        // corpus so requests overlap across workers.
                        let quota =
                            args.requests / level + usize::from(w < args.requests % level);
                        (0..quota)
                            .map(|i| run_one(addr, &bodies[(w + i) % bodies.len()]))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let wall = level_start.elapsed().as_secs_f64();
        let (hits_after, misses_after) = cache_counters(addr);

        let mut latencies_ms: Vec<f64> = Vec::new();
        let mut errors = 0usize;
        for result in &results {
            match result {
                Ok(c) => latencies_ms.push(c.latency.as_secs_f64() * 1e3),
                Err(e) => {
                    errors += 1;
                    eprintln!("adis-loadgen: c{level}: {e}");
                }
            }
        }
        latencies_ms.sort_by(|a, b| a.total_cmp(b));
        let completed = latencies_ms.len();
        total_completed += completed;
        let p50 = percentile(&latencies_ms, 0.50);
        let p99 = percentile(&latencies_ms, 0.99);
        let throughput = completed as f64 / wall.max(1e-9);
        let hits = hits_after.saturating_sub(hits_before);
        let misses = misses_after.saturating_sub(misses_before);
        let lookups = hits + misses;
        let hit_rate = if lookups > 0 {
            hits as f64 / lookups as f64
        } else {
            0.0
        };

        println!(
            "adis-loadgen: c{level:<3} {completed:>4} jobs in {wall:>7.2}s  \
             {throughput:>7.1} jobs/s  p50 {p50:>7.1} ms  p99 {p99:>7.1} ms  \
             shared-cache hit rate {:.1}% ({hits}/{lookups})",
            hit_rate * 100.0
        );

        let mut cell = ReportCell::new(format!("c{level}"), "serve", "adis-loadgen");
        cell.objective = p99;
        cell.seconds = wall;
        cell.cache_hits = hits;
        cell.cache_misses = misses;
        cell.extra = vec![
            ("concurrency".to_string(), Json::Num(level as f64)),
            ("completed".to_string(), Json::Num(completed as f64)),
            ("errors".to_string(), Json::Num(errors as f64)),
            ("throughput_rps".to_string(), Json::Num(throughput)),
            ("p50_ms".to_string(), Json::Num(p50)),
            ("p99_ms".to_string(), Json::Num(p99)),
            ("cache_hit_rate".to_string(), Json::Num(hit_rate)),
        ];
        report.push(cell);
    }
    report.total_wall(run_start.elapsed());

    match report.write_named(&args.out, "BENCH_serve.json") {
        Ok(path) => println!("adis-loadgen: wrote {}", path.display()),
        Err(e) => {
            eprintln!("adis-loadgen: could not write report: {e}");
            std::process::exit(1);
        }
    }
    if let Some(server) = hosted {
        server.shutdown();
    }
    if total_completed == 0 {
        eprintln!("adis-loadgen: no job completed");
        std::process::exit(1);
    }
}
