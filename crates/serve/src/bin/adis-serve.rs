//! `adis-serve` — the decomposition job server.
//!
//! ```text
//! adis-serve [--addr HOST:PORT] [--workers N] [--http-threads N]
//!            [--queue-depth N] [--timeout-ms MS]
//!            [--cache-capacity N] [--cache-shards N] [--report-dir DIR]
//! ```
//!
//! Binds, prints the resolved address (port `0` works) as
//! `adis-serve: listening on <addr>`, and serves until killed. See
//! `docs/SERVING.md` for the API.

use adis_core::CacheConfig;
use adis_serve::{ServeConfig, Server};
use std::path::PathBuf;
use std::time::Duration;

fn parse_args() -> Result<ServeConfig, String> {
    let mut cfg = ServeConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--workers" => {
                cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--http-threads" => {
                cfg.http_threads = value("--http-threads")?
                    .parse()
                    .map_err(|e| format!("--http-threads: {e}"))?;
            }
            "--queue-depth" => {
                cfg.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?;
            }
            "--timeout-ms" => {
                let ms: u64 = value("--timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--timeout-ms: {e}"))?;
                cfg.job_timeout = Duration::from_millis(ms);
            }
            "--cache-capacity" => {
                cfg.cache = CacheConfig {
                    capacity: value("--cache-capacity")?
                        .parse()
                        .map_err(|e| format!("--cache-capacity: {e}"))?,
                    ..cfg.cache
                };
            }
            "--cache-shards" => {
                cfg.cache = CacheConfig {
                    shards: value("--cache-shards")?
                        .parse()
                        .map_err(|e| format!("--cache-shards: {e}"))?,
                    ..cfg.cache
                };
            }
            "--report-dir" => cfg.report_dir = Some(PathBuf::from(value("--report-dir")?)),
            "--help" | "-h" => {
                println!(
                    "usage: adis-serve [--addr HOST:PORT] [--workers N] [--http-threads N]\n\
                     \u{20}                 [--queue-depth N] [--timeout-ms MS]\n\
                     \u{20}                 [--cache-capacity N] [--cache-shards N] [--report-dir DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if cfg.workers == 0 {
        return Err("--workers must be at least 1".to_string());
    }
    Ok(cfg)
}

fn main() {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("adis-serve: {e}");
            std::process::exit(2);
        }
    };
    let workers = cfg.workers;
    let queue_depth = cfg.queue_depth;
    let server = match Server::start(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("adis-serve: could not start: {e}");
            std::process::exit(1);
        }
    };
    println!("adis-serve: listening on {}", server.addr());
    println!("adis-serve: {workers} workers, queue depth {queue_depth}");
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}
