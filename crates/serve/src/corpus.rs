//! Seeded workload corpora for load generation and serving tests.
//!
//! A serving workload is not a stream of unrelated functions: real
//! clients re-submit the same function (retries, polling UIs, sweeps over
//! `error_budget`) and submit *families* of related functions (the same
//! datapath under small tweaks). Both patterns overlap heavily in the
//! component COPs they generate, which is exactly what the shared
//! cross-request cache exploits. The corpus here models that: a base
//! polynomial with small per-index affine perturbations, so distinct
//! entries still share many `(partition, column content)` pairs.

use crate::protocol::{JobSpec, SolverChoice};
use adis_boolfn::MultiOutputFn;
use adis_core::Mode;

/// SplitMix64: the corpus must be seed-deterministic without dragging a
/// rand dependency into the serving crate.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds a deterministic corpus of `size` related `inputs`-input,
/// `outputs`-output functions.
///
/// Entry `i` is `(a·p² + b·p + i·(p & mask)) mod 2^outputs` with `a`,
/// `b`, `mask` drawn once from `seed` — the family structure (shared
/// quadratic core, per-entry linear tweak) is what makes cross-request
/// cache hits representative rather than accidental.
///
/// ```
/// use adis_serve::corpus::corpus;
///
/// let fns = corpus(7, 4, 6, 4);
/// assert_eq!(fns.len(), 4);
/// // Deterministic: the same seed rebuilds the same corpus.
/// assert_eq!(fns[2].eval_word(13), corpus(7, 4, 6, 4)[2].eval_word(13));
/// ```
pub fn corpus(seed: u64, size: usize, inputs: u32, outputs: u32) -> Vec<MultiOutputFn> {
    let mut state = seed ^ 0xADD5_EEDC_0FFE_EABC;
    let a = splitmix64(&mut state) % 7 + 1;
    let b = splitmix64(&mut state) % 11;
    // `| 1` keeps the per-entry tweak alive: a zero mask would collapse
    // the whole corpus onto one function.
    let mask = (splitmix64(&mut state) % (1u64 << inputs.min(8))) | 1;
    let word_mask = (1u64 << outputs) - 1;
    (0..size as u64)
        .map(|i| {
            MultiOutputFn::from_word_fn(inputs, outputs, |p| {
                (a.wrapping_mul(p.wrapping_mul(p) / 4)
                    .wrapping_add(b.wrapping_mul(p))
                    .wrapping_add(i.wrapping_mul(p & mask)))
                    & word_mask
            })
        })
        .collect()
}

/// Wraps a corpus function into a job spec with the given knobs — the
/// request `adis-loadgen` submits for it.
pub fn spec_for(
    function: &MultiOutputFn,
    mode: Mode,
    bound_size: u32,
    partitions: usize,
    rounds: usize,
    seed: u64,
) -> JobSpec {
    let table = (0..1u64 << function.inputs())
        .map(|p| function.eval_word(p))
        .collect();
    JobSpec {
        inputs: function.inputs(),
        outputs: function.outputs(),
        table,
        mode,
        bound_size,
        partitions,
        rounds,
        seed,
        error_budget: None,
        solver: SolverChoice::default(),
        block_cols: None,
        coord_sweeps: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_distinct() {
        let a = corpus(3, 6, 6, 4);
        let b = corpus(3, 6, 6, 4);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            for p in 0..64 {
                assert_eq!(x.eval_word(p), y.eval_word(p));
            }
        }
        // Different seeds give different corpora (some word must differ).
        let c = corpus(4, 6, 6, 4);
        let differs = a
            .iter()
            .zip(&c)
            .any(|(x, y)| (0..64).any(|p| x.eval_word(p) != y.eval_word(p)));
        assert!(differs);
    }

    #[test]
    fn spec_for_round_trips_the_function() {
        let f = &corpus(1, 1, 5, 3)[0];
        let spec = spec_for(f, Mode::Joint, 2, 4, 1, 9);
        let g = spec.function();
        for p in 0..32 {
            assert_eq!(f.eval_word(p), g.eval_word(p));
        }
    }
}
