//! End-to-end tests of the job API: submit/poll round trips, error paths,
//! admission control, the cooperative timeout, and cross-request
//! bit-identity through the shared cache.

use adis_core::{Framework, Mode};
use adis_serve::corpus::{corpus, spec_for};
use adis_serve::{http, ServeConfig, Server};
use adis_telemetry::Json;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(10);

fn start(cfg: ServeConfig) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..cfg
    })
    .expect("bind on an OS-picked port")
}

fn get(addr: SocketAddr, path: &str) -> (u16, Json) {
    http::request(addr, "GET", path, None, TIMEOUT).expect("GET")
}

fn post(addr: SocketAddr, path: &str, body: &Json) -> (u16, Json) {
    http::request(addr, "POST", path, Some(body), TIMEOUT).expect("POST")
}

/// Polls a job until it leaves the queue/running states.
fn await_job(addr: SocketAddr, id: u64) -> Json {
    let path = format!("/v1/jobs/{id}");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = get(addr, &path);
        assert_eq!(status, 200, "{}", body.render());
        match body.get("status").and_then(Json::as_str) {
            Some("queued" | "running") => {
                assert!(Instant::now() < deadline, "job {id} never finished");
                std::thread::sleep(Duration::from_millis(2));
            }
            Some(_) => return body,
            None => panic!("malformed status body: {}", body.render()),
        }
    }
}

fn submit(addr: SocketAddr, body: &Json) -> u64 {
    let (status, response) = post(addr, "/v1/jobs", body);
    assert_eq!(status, 202, "{}", response.render());
    assert_eq!(
        response.get("status").and_then(Json::as_str),
        Some("queued")
    );
    let id = response.get("id").and_then(Json::as_u64).expect("job id");
    assert_eq!(
        response.get("status_url").and_then(Json::as_str),
        Some(format!("/v1/jobs/{id}").as_str())
    );
    id
}

#[test]
fn submit_poll_roundtrip_matches_a_local_run() {
    let server = start(ServeConfig::default());
    let function = &corpus(3, 1, 6, 4)[0];
    let spec = spec_for(function, Mode::Separate, 3, 5, 1, 11);
    let id = submit(server.addr(), &spec.to_json());
    let body = await_job(server.addr(), id);
    assert_eq!(body.get("status").and_then(Json::as_str), Some("done"));

    let result = body.get("result").expect("done jobs carry a result");
    // The served answer is bit-identical to running the framework
    // locally with the same spec.
    let local = Framework::new(Mode::Separate, 3)
        .partitions(5)
        .rounds(1)
        .seed(11)
        .parallel(false)
        .decompose(function);
    assert_eq!(
        result.get("med").and_then(Json::as_f64),
        Some(local.med),
        "served med must equal the local run's"
    );
    assert_eq!(result.get("er").and_then(Json::as_f64), Some(local.er));
    let lut = local.to_lut();
    assert_eq!(
        result.get("lut_bits").and_then(Json::as_u64),
        Some(lut.size_bits())
    );
    assert_eq!(
        result.get("direct_bits").and_then(Json::as_u64),
        Some(lut.direct_size_bits())
    );
    assert_eq!(
        result.get("cop_solves").and_then(Json::as_u64),
        Some(local.cop_solves as u64)
    );
    // Telemetry fields exist and are sane.
    for key in ["queue_seconds", "solve_seconds"] {
        let v = result.get(key).and_then(Json::as_f64).expect(key);
        assert!(v >= 0.0, "{key} = {v}");
    }
    server.shutdown();
}

#[test]
fn error_budget_is_evaluated_against_the_mode_objective() {
    let server = start(ServeConfig::default());
    let function = &corpus(5, 1, 6, 4)[0];
    let mut spec = spec_for(function, Mode::Separate, 3, 4, 1, 2);
    // Any decomposition of a non-degenerate function has ER ≤ 1, so a
    // budget of 1.0 always passes and a budget of -0.0… cannot exist;
    // use two budgets bracketing the objective instead.
    spec.error_budget = Some(1.0);
    let id = submit(server.addr(), &spec.to_json());
    let body = await_job(server.addr(), id);
    let result = body.get("result").unwrap();
    assert_eq!(
        result.get("within_budget").and_then(Json::as_bool),
        Some(true)
    );
    let objective = result.get("objective").and_then(Json::as_f64).unwrap();
    assert_eq!(
        objective,
        result.get("er").and_then(Json::as_f64).unwrap(),
        "separate mode budgets ER"
    );
    server.shutdown();
}

#[test]
fn malformed_submissions_get_400_with_a_reason() {
    let server = start(ServeConfig::default());
    let addr = server.addr();
    // Syntactically invalid JSON, sent over a raw socket since the client
    // helper only speaks well-formed bodies.
    {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(TIMEOUT)).unwrap();
        let payload = "{nope";
        stream
            .write_all(
                format!(
                    "POST /v1/jobs HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{payload}",
                    payload.len()
                )
                .as_bytes(),
            )
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("error"), "{response}");
    }
    // Well-formed JSON that is not an object.
    let (status, body) =
        http::request(addr, "POST", "/v1/jobs", Some(&Json::str("{nope")), TIMEOUT).unwrap();
    assert_eq!(status, 400, "{}", body.render());
    assert!(body.get("error").is_some());
    // Valid JSON, invalid spec.
    let (status, body) = post(
        addr,
        "/v1/jobs",
        &Json::parse(r#"{"inputs":2,"outputs":1,"table":[0,1],"mode":"separate"}"#).unwrap(),
    );
    assert_eq!(status, 400);
    let reason = body.get("error").and_then(Json::as_str).unwrap();
    assert!(reason.contains("table"), "unhelpful error: {reason}");
    server.shutdown();
}

#[test]
fn unknown_jobs_get_404() {
    let server = start(ServeConfig::default());
    let (status, _) = get(server.addr(), "/v1/jobs/999999");
    assert_eq!(status, 404);
    let (status, _) = get(server.addr(), "/v1/jobs/not-a-number");
    assert_eq!(status, 404);
    server.shutdown();
}

#[test]
fn full_queue_rejects_with_429_and_the_rest_completes() {
    // One worker, a short queue, and a burst much larger than both: some
    // submissions must bounce with 429, every accepted one must finish.
    let server = start(ServeConfig {
        workers: 1,
        queue_depth: 2,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let function = &corpus(9, 1, 7, 4)[0];
    // A heavier spec so the single worker cannot drain the burst.
    let body = spec_for(function, Mode::Separate, 3, 12, 2, 1).to_json();

    let mut accepted = Vec::new();
    let mut rejected = 0usize;
    for _ in 0..40 {
        let (status, response) = post(addr, "/v1/jobs", &body);
        match status {
            202 => accepted.push(response.get("id").and_then(Json::as_u64).unwrap()),
            429 => rejected += 1,
            other => panic!("unexpected status {other}: {}", response.render()),
        }
    }
    assert!(rejected > 0, "a burst of 40 into depth 2 must see 429s");
    assert!(!accepted.is_empty(), "admission control must not reject everything");
    for id in accepted {
        let body = await_job(addr, id);
        assert_eq!(
            body.get("status").and_then(Json::as_str),
            Some("done"),
            "{}",
            body.render()
        );
    }
    // The stats endpoint agrees.
    let (_, stats) = get(addr, "/v1/stats");
    let jobs = stats.get("jobs").unwrap();
    assert_eq!(
        jobs.get("rejected").and_then(Json::as_u64),
        Some(rejected as u64)
    );
    server.shutdown();
}

#[test]
fn zero_timeout_times_every_job_out() {
    let server = start(ServeConfig {
        job_timeout: Duration::ZERO,
        ..ServeConfig::default()
    });
    let function = &corpus(2, 1, 6, 4)[0];
    let body = spec_for(function, Mode::Separate, 3, 4, 1, 5).to_json();
    let id = submit(server.addr(), &body);
    let status = await_job(server.addr(), id);
    assert_eq!(
        status.get("status").and_then(Json::as_str),
        Some("timed_out")
    );
    assert!(status.get("result").is_none(), "timed-out jobs carry no result");
    server.shutdown();
}

#[test]
fn mid_solve_timeout_reports_timed_out_promptly() {
    // Regression: the per-job timeout used to be checked only at dequeue
    // and completion, so a long solve ran to the end before reporting
    // timed_out. The remaining budget is now threaded into the framework
    // as a cooperative deadline, so the solve itself unwinds early.
    let server = start(ServeConfig {
        workers: 1,
        job_timeout: Duration::from_millis(250),
        ..ServeConfig::default()
    });
    // A spec that takes far longer than the timeout when run to
    // completion: 10 inputs, joint mode, a 64-partition sweep, 4 rounds.
    let function = &corpus(17, 1, 10, 8)[0];
    let body = spec_for(function, Mode::Joint, 5, 64, 4, 3).to_json();
    let id = submit(server.addr(), &body);
    let waited = Instant::now();
    let status = await_job(server.addr(), id);
    assert_eq!(
        status.get("status").and_then(Json::as_str),
        Some("timed_out"),
        "{}",
        status.render()
    );
    assert!(status.get("result").is_none(), "timed-out jobs carry no result");
    // "Promptly": the job stops within poll-granularity slack of its
    // 250 ms budget, nowhere near the full solve time.
    assert!(
        waited.elapsed() < Duration::from_secs(10),
        "cooperative cancel took {:?}",
        waited.elapsed()
    );
    server.shutdown();
}

#[test]
fn solver_field_selects_the_roster_and_reports_the_winner() {
    let server = start(ServeConfig::default());
    let addr = server.addr();
    let function = &corpus(3, 1, 6, 4)[0];

    // Unknown solver names are a strict 400.
    let mut bad = spec_for(function, Mode::Separate, 3, 4, 1, 11).to_json();
    if let Json::Obj(fields) = &mut bad {
        fields.retain(|(k, _)| k != "solver");
        fields.push(("solver".to_string(), Json::str("warp")));
    }
    let (status, body) = post(addr, "/v1/jobs", &bad);
    assert_eq!(status, 400, "{}", body.render());
    assert!(
        body.get("error").and_then(Json::as_str).unwrap().contains("portfolio"),
        "the rejection must list the roster"
    );

    // A fixed solver reports itself.
    let mut spec = spec_for(function, Mode::Separate, 3, 4, 1, 11);
    spec.solver = adis_serve::SolverChoice::Exact;
    let id = submit(addr, &spec.to_json());
    let done = await_job(addr, id);
    assert_eq!(done.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(
        done.get("result").and_then(|r| r.get("solver")).and_then(Json::as_str),
        Some("exact")
    );

    // The portfolio reports the member that won its races.
    spec.solver = adis_serve::SolverChoice::Portfolio;
    let id = submit(addr, &spec.to_json());
    let done = await_job(addr, id);
    assert_eq!(
        done.get("status").and_then(Json::as_str),
        Some("done"),
        "{}",
        done.render()
    );
    let winner = done
        .get("result")
        .and_then(|r| r.get("solver"))
        .and_then(Json::as_str)
        .expect("portfolio jobs attribute a winner");
    assert!(
        ["bsb", "simcim", "doch", "dalta", "portfolio"].contains(&winner),
        "unexpected winner {winner}"
    );

    // The partitioned large-n solver accepts its tuning knobs end to end.
    spec.solver = adis_serve::SolverChoice::Partitioned;
    spec.block_cols = Some(2);
    spec.coord_sweeps = Some(2);
    let id = submit(addr, &spec.to_json());
    let done = await_job(addr, id);
    assert_eq!(
        done.get("status").and_then(Json::as_str),
        Some("done"),
        "{}",
        done.render()
    );
    assert_eq!(
        done.get("result").and_then(|r| r.get("solver")).and_then(Json::as_str),
        Some("partitioned")
    );

    // The knobs are gated on the partitioned solver: anything else is a
    // strict 400.
    spec.solver = adis_serve::SolverChoice::Exact;
    let (status, body) = post(addr, "/v1/jobs", &spec.to_json());
    assert_eq!(status, 400, "{}", body.render());
    server.shutdown();
}

#[test]
fn concurrent_identical_submissions_share_the_cache_and_agree() {
    let server = start(ServeConfig {
        workers: 4,
        http_threads: 4,
        queue_depth: 256,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let functions = corpus(13, 3, 6, 4);
    let bodies: Vec<Json> = functions
        .iter()
        .map(|f| spec_for(f, Mode::Separate, 3, 5, 1, 21).to_json())
        .collect();

    const CLIENTS: usize = 6;
    const PER_CLIENT: usize = 3; // one submission per corpus entry
    let meds: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let bodies = &bodies;
                scope.spawn(move || {
                    (0..PER_CLIENT)
                        .map(|i| {
                            let body = &bodies[(c + i) % bodies.len()];
                            let id = submit(addr, body);
                            let done = await_job(addr, id);
                            assert_eq!(
                                done.get("status").and_then(Json::as_str),
                                Some("done"),
                                "{}",
                                done.render()
                            );
                            (
                                (c + i) % bodies.len(),
                                done.get("result")
                                    .and_then(|r| r.get("med"))
                                    .and_then(Json::as_f64)
                                    .unwrap(),
                            )
                        })
                        .fold(vec![f64::NAN; bodies.len()], |mut acc, (slot, med)| {
                            acc[slot] = med;
                            acc
                        })
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every client saw the same answer for the same corpus entry, and it
    // matches a cold local run.
    for (slot, function) in functions.iter().enumerate() {
        let local = Framework::new(Mode::Separate, 3)
            .partitions(5)
            .rounds(1)
            .seed(21)
            .parallel(false)
            .decompose(function);
        for (client, client_meds) in meds.iter().enumerate() {
            let served = client_meds[slot];
            assert_eq!(
                served.to_bits(),
                local.med.to_bits(),
                "client {client}, corpus entry {slot}"
            );
        }
    }

    // 18 overlapping submissions of 3 distinct specs: the shared tier
    // must have been hit across requests.
    let stats = server.cache().stats();
    assert!(
        stats.hits > 0,
        "no cross-request sharing happened: {stats:?}"
    );
    server.shutdown();
}

#[test]
fn stats_and_healthz_are_well_formed() {
    let server = start(ServeConfig::default());
    let (status, health) = get(server.addr(), "/v1/healthz");
    assert_eq!(status, 200);
    assert_eq!(health.get("ok").and_then(Json::as_bool), Some(true));

    let (status, stats) = get(server.addr(), "/v1/stats");
    assert_eq!(status, 200);
    for section in ["queue", "jobs", "http", "fused", "cache"] {
        assert!(stats.get(section).is_some(), "missing {section}");
    }
    let cache = stats.get("cache").unwrap();
    for key in ["hits", "misses", "insertions", "evictions", "entries", "capacity", "hit_rate"] {
        assert!(cache.get(key).is_some(), "missing cache.{key}");
    }
    let fused = stats.get("fused").unwrap();
    for key in ["batches", "units", "refills", "occupancy"] {
        assert!(fused.get(key).is_some(), "missing fused.{key}");
    }
    // Jobs run single-candidate with a deadline, so the fused path never
    // engages in serving — the counters must be present but zero, and an
    // idle fused meter reads full occupancy.
    assert_eq!(fused.get("batches").and_then(Json::as_u64), Some(0));
    assert_eq!(fused.get("occupancy").and_then(Json::as_f64), Some(1.0));
    server.shutdown();
}
