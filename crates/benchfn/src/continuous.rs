//! The paper's six continuous benchmark functions, with the exact domains
//! and ranges of Table 1.

use crate::{QuantizeError, Quantizer};
use adis_boolfn::MultiOutputFn;

/// One of the six continuous functions evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContinuousFn {
    /// `cos(x)` on `[0, π/2] → [0, 1]`.
    Cos,
    /// `tan(x)` on `[0, 2π/5] → [0, 3.08]`.
    Tan,
    /// `exp(x)` on `[0, 3] → [0, 20.09]`.
    Exp,
    /// `ln(x)` on `[1, 10] → [0, 2.30]`.
    Ln,
    /// `erf(x)` on `[0, 3] → [0, 1]`.
    Erf,
    /// Gaussian denoising kernel on `[0, 3] → [0, 0.81]`. The paper does
    /// not print a formula; we use `0.81·e^{−x²/2}`, which matches the
    /// printed domain and range (see DESIGN.md, Substitutions).
    Denoise,
}

impl ContinuousFn {
    /// All six functions in the paper's Table 1 order.
    pub const ALL: [ContinuousFn; 6] = [
        ContinuousFn::Cos,
        ContinuousFn::Tan,
        ContinuousFn::Exp,
        ContinuousFn::Ln,
        ContinuousFn::Erf,
        ContinuousFn::Denoise,
    ];

    /// Lower-case display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            ContinuousFn::Cos => "cos",
            ContinuousFn::Tan => "tan",
            ContinuousFn::Exp => "exp",
            ContinuousFn::Ln => "ln",
            ContinuousFn::Erf => "erf",
            ContinuousFn::Denoise => "denoise",
        }
    }

    /// The quantization domain from Table 1.
    pub fn domain(self) -> (f64, f64) {
        match self {
            ContinuousFn::Cos => (0.0, std::f64::consts::FRAC_PI_2),
            ContinuousFn::Tan => (0.0, 2.0 * std::f64::consts::PI / 5.0),
            ContinuousFn::Exp => (0.0, 3.0),
            ContinuousFn::Ln => (1.0, 10.0),
            ContinuousFn::Erf => (0.0, 3.0),
            ContinuousFn::Denoise => (0.0, 3.0),
        }
    }

    /// The quantization range from Table 1.
    pub fn range(self) -> (f64, f64) {
        match self {
            ContinuousFn::Cos => (0.0, 1.0),
            ContinuousFn::Tan => (0.0, 3.08),
            ContinuousFn::Exp => (0.0, 20.09),
            ContinuousFn::Ln => (0.0, 2.30),
            ContinuousFn::Erf => (0.0, 1.0),
            ContinuousFn::Denoise => (0.0, 0.81),
        }
    }

    /// Evaluates the real function.
    pub fn eval(self, x: f64) -> f64 {
        match self {
            ContinuousFn::Cos => x.cos(),
            ContinuousFn::Tan => x.tan(),
            ContinuousFn::Exp => x.exp(),
            ContinuousFn::Ln => x.ln(),
            ContinuousFn::Erf => erf(x),
            ContinuousFn::Denoise => 0.81 * (-x * x / 2.0).exp(),
        }
    }

    /// Quantizes into an `n`-input, `m`-output Boolean function using the
    /// paper's domain/range.
    ///
    /// # Errors
    ///
    /// Propagates [`QuantizeError`] for unsupported widths.
    pub fn function(self, input_bits: u32, output_bits: u32) -> Result<MultiOutputFn, QuantizeError> {
        let q = Quantizer::new(input_bits, output_bits, self.domain(), self.range())?;
        Ok(q.quantize(|x| self.eval(x)))
    }
}

/// The error function `erf(x)`, via the Abramowitz–Stegun 7.1.26 rational
/// approximation (|error| ≤ 1.5e−7 — two orders below 16-bit quantization
/// resolution).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - ((((A5 * t + A4) * t + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from tables of erf.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (2.0, 0.9953222650),
            (3.0, 0.9999779095),
            (-1.0, -0.8427007929),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x})");
        }
    }

    #[test]
    fn ranges_cover_function_values() {
        // The printed range must contain the function's values over the
        // domain (allowing the documented rounding of range endpoints).
        for f in ContinuousFn::ALL {
            let (lo, hi) = f.domain();
            let (rlo, rhi) = f.range();
            for k in 0..=100 {
                let x = lo + (hi - lo) * (k as f64) / 100.0;
                let y = f.eval(x);
                assert!(
                    y >= rlo - 1e-9 && y <= rhi + 0.01,
                    "{}({x}) = {y} outside [{rlo}, {rhi}]",
                    f.name()
                );
            }
        }
    }

    #[test]
    fn quantized_function_shapes() {
        let f = ContinuousFn::Cos.function(9, 9).unwrap();
        assert_eq!(f.inputs(), 9);
        assert_eq!(f.outputs(), 9);
        // cos decreasing: word at 0 is max, at end is min.
        assert_eq!(f.eval_word(0), 511);
        assert_eq!(f.eval_word(511), 0);
    }

    #[test]
    fn tan_endpoint_matches_printed_range() {
        // tan(2π/5) ≈ 3.0777 — inside the printed 3.08 range.
        let (_, hi) = ContinuousFn::Tan.domain();
        assert!((ContinuousFn::Tan.eval(hi) - 3.0777).abs() < 1e-3);
    }

    #[test]
    fn denoise_range() {
        assert!((ContinuousFn::Denoise.eval(0.0) - 0.81).abs() < 1e-12);
        assert!(ContinuousFn::Denoise.eval(3.0) < 0.01);
    }

    #[test]
    fn all_names_unique() {
        let names: std::collections::HashSet<_> =
            ContinuousFn::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), 6);
    }
}
