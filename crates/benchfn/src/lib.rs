//! Benchmark function generators for the approximate-LUT experiments.
//!
//! The paper evaluates on the benchmark set of DALTA (ICCAD'21): six
//! continuous functions (`cos`, `tan`, `exp`, `ln`, `erf`, `denoise`) and
//! four non-continuous arithmetic kernels from AxBench (Brent-Kung adder,
//! `forwardk2j`, `inversek2j`, multiplier). Everything is generated from
//! scratch here:
//!
//! - [`Quantizer`]: uniform domain/range quantization of real functions;
//! - [`ContinuousFn`]: the six continuous functions with the paper's exact
//!   domains and ranges (including a from-scratch [`erf`]);
//! - [`Netlist`] + [`brent_kung_adder`] / [`array_multiplier`]: the
//!   arithmetic circuits built at **gate level** and evaluated to tables;
//! - [`forwardk2j`] / [`inversek2j`]: the 2-joint kinematics kernels;
//! - [`Benchmark`] / [`QuantScheme`]: the assembled suite with the paper's
//!   two quantization schemes (`n = 9` and `n = 16`).
//!
//! # Example
//!
//! ```
//! use adis_benchfn::{Benchmark, ContinuousFn, QuantScheme};
//!
//! let f = Benchmark::Continuous(ContinuousFn::Cos).function(QuantScheme::Small)?;
//! assert_eq!((f.inputs(), f.outputs()), (9, 9));
//! # Ok::<(), adis_benchfn::BenchmarkError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod circuits;
mod continuous;
mod gates;
mod kinematics;
mod quantize;
mod suite;

pub use circuits::{array_multiplier, brent_kung_adder, netlist_to_function};
pub use continuous::{erf, ContinuousFn};
pub use gates::{Gate, Netlist, NodeId};
pub use kinematics::{forwardk2j, forwardk2j_x, inversek2j, inversek2j_theta2, L1, L2};
pub use quantize::{QuantizeError, Quantizer};
pub use suite::{Benchmark, BenchmarkError, QuantScheme};
