//! A small combinational netlist representation used to build the AxBench
//! arithmetic circuits at gate level.
//!
//! The non-continuous benchmarks (Brent-Kung adder, array multiplier) are
//! built as actual gate networks and *evaluated* into truth tables — not
//! just computed arithmetically — so the benchmark substrate matches how
//! AxBench circuits are defined. A unit test cross-checks each network
//! against the arithmetic identity it should implement.

use std::fmt;

/// Index of a node within a [`Netlist`].
pub type NodeId = usize;

/// A combinational node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Primary input bit `i` of the evaluation pattern.
    Input(u32),
    /// Constant.
    Const(bool),
    /// Inverter.
    Not(NodeId),
    /// 2-input AND.
    And(NodeId, NodeId),
    /// 2-input OR.
    Or(NodeId, NodeId),
    /// 2-input XOR.
    Xor(NodeId, NodeId),
}

/// A topologically ordered combinational netlist with designated outputs.
///
/// Nodes may only reference earlier nodes, which the builders enforce, so
/// evaluation is a single forward pass.
///
/// # Examples
///
/// ```
/// use adis_benchfn::Netlist;
///
/// // A half adder.
/// let mut n = Netlist::new(2);
/// let a = n.input(0);
/// let b = n.input(1);
/// let sum = n.xor(a, b);
/// let carry = n.and(a, b);
/// n.set_outputs(vec![sum, carry]);
/// assert_eq!(n.eval(0b11), 0b10); // 1+1 = carry, no sum
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    num_inputs: u32,
    nodes: Vec<Gate>,
    outputs: Vec<NodeId>,
}

impl Netlist {
    /// An empty netlist reading `num_inputs` pattern bits.
    pub fn new(num_inputs: u32) -> Self {
        Netlist {
            num_inputs,
            nodes: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> u32 {
        self.num_inputs
    }

    /// Number of nodes (gates + inputs + constants).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of two-input logic gates (excludes inputs, constants, NOTs).
    pub fn num_gates(&self) -> usize {
        self.nodes
            .iter()
            .filter(|g| matches!(g, Gate::And(..) | Gate::Or(..) | Gate::Xor(..)))
            .count()
    }

    fn push(&mut self, g: Gate) -> NodeId {
        // Validate operand ordering so evaluation stays a forward pass.
        let limit = self.nodes.len();
        let ok = match g {
            Gate::Input(i) => {
                assert!(i < self.num_inputs, "input index out of range");
                true
            }
            Gate::Const(_) => true,
            Gate::Not(a) => a < limit,
            Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => a < limit && b < limit,
        };
        assert!(ok, "gate operands must reference earlier nodes");
        self.nodes.push(g);
        limit
    }

    /// Adds a primary-input reader node.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_inputs`.
    pub fn input(&mut self, i: u32) -> NodeId {
        self.push(Gate::Input(i))
    }

    /// Adds a constant node.
    pub fn constant(&mut self, v: bool) -> NodeId {
        self.push(Gate::Const(v))
    }

    /// Adds a NOT gate.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        self.push(Gate::Not(a))
    }

    /// Adds an AND gate.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::And(a, b))
    }

    /// Adds an OR gate.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Or(a, b))
    }

    /// Adds an XOR gate.
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Xor(a, b))
    }

    /// Adds a full adder; returns `(sum, carry_out)`.
    pub fn full_adder(&mut self, a: NodeId, b: NodeId, cin: NodeId) -> (NodeId, NodeId) {
        let axb = self.xor(a, b);
        let sum = self.xor(axb, cin);
        let t1 = self.and(a, b);
        let t2 = self.and(cin, axb);
        let cout = self.or(t1, t2);
        (sum, cout)
    }

    /// Designates the output bits (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if an output references a missing node or there are more
    /// than 64 outputs.
    pub fn set_outputs(&mut self, outputs: Vec<NodeId>) {
        assert!(outputs.len() <= 64, "at most 64 outputs");
        assert!(
            outputs.iter().all(|&o| o < self.nodes.len()),
            "output references missing node"
        );
        self.outputs = outputs;
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> u32 {
        self.outputs.len() as u32
    }

    /// Evaluates the netlist on an input pattern, returning the output word
    /// (output `k` at bit `k`).
    pub fn eval(&self, pattern: u64) -> u64 {
        let mut values = vec![false; self.nodes.len()];
        for (idx, g) in self.nodes.iter().enumerate() {
            values[idx] = match *g {
                Gate::Input(i) => (pattern >> i) & 1 == 1,
                Gate::Const(v) => v,
                Gate::Not(a) => !values[a],
                Gate::And(a, b) => values[a] && values[b],
                Gate::Or(a, b) => values[a] || values[b],
                Gate::Xor(a, b) => values[a] ^ values[b],
            };
        }
        let mut w = 0u64;
        for (k, &o) in self.outputs.iter().enumerate() {
            if values[o] {
                w |= 1 << k;
            }
        }
        w
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist: {} inputs, {} outputs, {} gates",
            self.num_inputs,
            self.outputs.len(),
            self.num_gates()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_adder() {
        let mut n = Netlist::new(2);
        let a = n.input(0);
        let b = n.input(1);
        let s = n.xor(a, b);
        let c = n.and(a, b);
        n.set_outputs(vec![s, c]);
        for p in 0..4u64 {
            let expect = (p & 1) + ((p >> 1) & 1);
            assert_eq!(n.eval(p), expect);
        }
    }

    #[test]
    fn full_adder_truth_table() {
        let mut n = Netlist::new(3);
        let a = n.input(0);
        let b = n.input(1);
        let c = n.input(2);
        let (s, co) = n.full_adder(a, b, c);
        n.set_outputs(vec![s, co]);
        for p in 0..8u64 {
            let expect = (p & 1) + ((p >> 1) & 1) + ((p >> 2) & 1);
            assert_eq!(n.eval(p), expect);
        }
    }

    #[test]
    fn constants_and_not() {
        let mut n = Netlist::new(1);
        let a = n.input(0);
        let na = n.not(a);
        let one = n.constant(true);
        let o = n.and(na, one);
        n.set_outputs(vec![o]);
        assert_eq!(n.eval(0), 1);
        assert_eq!(n.eval(1), 0);
    }

    #[test]
    fn gate_count_excludes_wiring() {
        let mut n = Netlist::new(2);
        let a = n.input(0);
        let b = n.input(1);
        let na = n.not(a);
        let _ = n.and(na, b);
        assert_eq!(n.num_gates(), 1);
        assert_eq!(n.num_nodes(), 4);
    }

    #[test]
    #[should_panic(expected = "earlier nodes")]
    fn forward_reference_rejected() {
        let mut n = Netlist::new(1);
        n.push(Gate::Not(5));
    }
}
