//! The paper's benchmark suite as a uniform descriptor type, covering both
//! quantization schemes of Section 4.

use crate::{
    array_multiplier, brent_kung_adder, netlist_to_function, ContinuousFn, QuantizeError,
};
use adis_boolfn::MultiOutputFn;

/// One of the ten benchmarks of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// A continuous function (Table 1 / Fig. 4).
    Continuous(ContinuousFn),
    /// Gate-level Brent-Kung adder, 8+8 → 9 bits (Fig. 4, `m = 9`).
    BrentKung,
    /// Forward kinematics kernel (Fig. 4).
    Forwardk2j,
    /// Inverse kinematics kernel (Fig. 4).
    Inversek2j,
    /// Gate-level 8×8 array multiplier (Fig. 4, `m = 16`).
    Multiplier,
    /// Inverse square root `1/√x` on `[1, 4] → [0.5, 1]`, 16-input only.
    /// An extended large-`n` entry (not part of the paper's ten): the
    /// workload the multi-level/partitioned decomposition path targets.
    Rsqrt,
    /// Logistic sigmoid `1/(1+e^{−x})` on `[−6, 6] → [0, 1]`, 16-input
    /// only. Extended large-`n` entry, like [`Benchmark::Rsqrt`].
    Sigmoid,
}

/// The two quantization schemes of Section 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantScheme {
    /// `n = 9`, free set 4, bound set 5; continuous outputs `m = 9`.
    Small,
    /// `n = 16`, free set 7, bound set 9; continuous outputs `m = 16`.
    Large,
}

impl QuantScheme {
    /// Total input bits `n`.
    pub fn input_bits(self) -> u32 {
        match self {
            QuantScheme::Small => 9,
            QuantScheme::Large => 16,
        }
    }

    /// Free-set size `|A|`.
    pub fn free_size(self) -> u32 {
        match self {
            QuantScheme::Small => 4,
            QuantScheme::Large => 7,
        }
    }

    /// Bound-set size `|B|`.
    pub fn bound_size(self) -> u32 {
        match self {
            QuantScheme::Small => 5,
            QuantScheme::Large => 9,
        }
    }
}

/// Error building a benchmark function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BenchmarkError {
    /// The benchmark is not defined for the scheme (circuits are 16-input
    /// only).
    UnsupportedScheme,
    /// Underlying quantization failure.
    Quantize(QuantizeError),
}

impl std::fmt::Display for BenchmarkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchmarkError::UnsupportedScheme => {
                write!(f, "benchmark is not defined for this quantization scheme")
            }
            BenchmarkError::Quantize(e) => write!(f, "quantization failed: {e}"),
        }
    }
}

impl std::error::Error for BenchmarkError {}

impl From<QuantizeError> for BenchmarkError {
    fn from(e: QuantizeError) -> Self {
        BenchmarkError::Quantize(e)
    }
}

impl Benchmark {
    /// The six continuous benchmarks (Table 1 order).
    pub fn continuous() -> Vec<Benchmark> {
        ContinuousFn::ALL.iter().copied().map(Benchmark::Continuous).collect()
    }

    /// All ten benchmarks of the large-scale experiment (Fig. 4 order).
    pub fn all() -> Vec<Benchmark> {
        let mut v = Self::continuous();
        v.extend([
            Benchmark::BrentKung,
            Benchmark::Forwardk2j,
            Benchmark::Inversek2j,
            Benchmark::Multiplier,
        ]);
        v
    }

    /// The paper's ten plus the extended large-`n` (16-input-only)
    /// entries used by the multi-level/partitioned decomposition bench.
    pub fn extended() -> Vec<Benchmark> {
        let mut v = Self::all();
        v.extend([Benchmark::Rsqrt, Benchmark::Sigmoid]);
        v
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Continuous(f) => f.name(),
            Benchmark::BrentKung => "brent-kung",
            Benchmark::Forwardk2j => "forwardk2j",
            Benchmark::Inversek2j => "inversek2j",
            Benchmark::Multiplier => "multiplier",
            Benchmark::Rsqrt => "rsqrt",
            Benchmark::Sigmoid => "sigmoid",
        }
    }

    /// Whether the benchmark is defined for `scheme`.
    pub fn supports(self, scheme: QuantScheme) -> bool {
        match self {
            Benchmark::Continuous(_) => true,
            // The paper evaluates the arithmetic circuits only at n = 16;
            // the extended entries exist only at n = 16 by design.
            _ => scheme == QuantScheme::Large,
        }
    }

    /// Output bit count under `scheme` (Brent-Kung is 9-output; the other
    /// large-scale benchmarks are 16-output).
    pub fn output_bits(self, scheme: QuantScheme) -> u32 {
        match (self, scheme) {
            (Benchmark::Continuous(_), QuantScheme::Small) => 9,
            (Benchmark::Continuous(_), QuantScheme::Large) => 16,
            (Benchmark::BrentKung, _) => 9,
            (_, _) => 16,
        }
    }

    /// Builds the complete Boolean function for this benchmark.
    ///
    /// # Errors
    ///
    /// Returns [`BenchmarkError::UnsupportedScheme`] for circuit benchmarks
    /// under the small scheme.
    pub fn function(self, scheme: QuantScheme) -> Result<MultiOutputFn, BenchmarkError> {
        if !self.supports(scheme) {
            return Err(BenchmarkError::UnsupportedScheme);
        }
        let n = scheme.input_bits();
        let m = self.output_bits(scheme);
        match self {
            Benchmark::Continuous(f) => Ok(f.function(n, m)?),
            Benchmark::BrentKung => Ok(netlist_to_function(&brent_kung_adder(n / 2))),
            Benchmark::Multiplier => Ok(netlist_to_function(&array_multiplier(n / 2))),
            Benchmark::Forwardk2j => Ok(crate::forwardk2j(n, m)?),
            Benchmark::Inversek2j => Ok(crate::inversek2j(n, m)?),
            Benchmark::Rsqrt => {
                let q = crate::Quantizer::new(n, m, (1.0, 4.0), (0.5, 1.0))?;
                Ok(q.quantize(|x| 1.0 / x.sqrt()))
            }
            Benchmark::Sigmoid => {
                let q = crate::Quantizer::new(n, m, (-6.0, 6.0), (0.0, 1.0))?;
                Ok(q.quantize(|x| 1.0 / (1.0 + (-x).exp())))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes() {
        assert_eq!(Benchmark::continuous().len(), 6);
        assert_eq!(Benchmark::all().len(), 10);
        assert_eq!(Benchmark::extended().len(), 12);
        let names: std::collections::HashSet<_> =
            Benchmark::extended().iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn extended_entries_are_large_only_and_monotone() {
        for b in [Benchmark::Rsqrt, Benchmark::Sigmoid] {
            assert!(b.function(QuantScheme::Small).is_err());
            let f = b.function(QuantScheme::Large).unwrap();
            assert_eq!(f.inputs(), 16);
            assert_eq!(f.outputs(), 16);
        }
        // rsqrt decreasing on [1, 4]: max word at 0, min at the end.
        let r = Benchmark::Rsqrt.function(QuantScheme::Large).unwrap();
        assert!(r.eval_word(0) > r.eval_word(65535));
        // sigmoid increasing on [-6, 6].
        let s = Benchmark::Sigmoid.function(QuantScheme::Large).unwrap();
        assert!(s.eval_word(0) < s.eval_word(65535));
    }

    #[test]
    fn small_scheme_shapes() {
        for b in Benchmark::continuous() {
            let f = b.function(QuantScheme::Small).unwrap();
            assert_eq!(f.inputs(), 9);
            assert_eq!(f.outputs(), 9);
        }
    }

    #[test]
    fn circuits_large_only() {
        assert!(Benchmark::BrentKung.function(QuantScheme::Small).is_err());
        assert!(Benchmark::Multiplier.supports(QuantScheme::Large));
    }

    #[test]
    fn large_scheme_output_bits_match_paper() {
        assert_eq!(Benchmark::BrentKung.output_bits(QuantScheme::Large), 9);
        assert_eq!(Benchmark::Multiplier.output_bits(QuantScheme::Large), 16);
        assert_eq!(
            Benchmark::Continuous(ContinuousFn::Cos).output_bits(QuantScheme::Large),
            16
        );
    }

    #[test]
    fn brent_kung_large_is_correct_adder() {
        let f = Benchmark::BrentKung.function(QuantScheme::Large).unwrap();
        assert_eq!(f.inputs(), 16);
        assert_eq!(f.outputs(), 9);
        for (a, b) in [(0u64, 0u64), (255, 255), (100, 27)] {
            assert_eq!(f.eval_word(a | (b << 8)), a + b);
        }
    }

    #[test]
    fn scheme_partition_sizes_match_paper() {
        assert_eq!(QuantScheme::Small.free_size() + QuantScheme::Small.bound_size(), 9);
        assert_eq!(QuantScheme::Large.free_size() + QuantScheme::Large.bound_size(), 16);
    }
}
