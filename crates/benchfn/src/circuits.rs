//! Gate-level arithmetic circuits from the AxBench-derived benchmark set:
//! the Brent-Kung parallel-prefix adder and an array multiplier.
//!
//! Input packing follows the paper's 16-bit quantization: the first operand
//! occupies pattern bits `[0, width)` and the second `[width, 2·width)`.

use crate::{Netlist, NodeId};
use adis_boolfn::MultiOutputFn;

/// Builds a gate-level Brent-Kung adder: `width`-bit `a + b` with a
/// `width + 1`-bit sum (the paper's 16-input, 9-output benchmark for
/// `width = 8`).
///
/// # Panics
///
/// Panics unless `width` is a power of two in `2..=16` (the classic
/// Brent-Kung prefix tree shape).
pub fn brent_kung_adder(width: u32) -> Netlist {
    assert!(
        width.is_power_of_two() && (2..=16).contains(&width),
        "width must be a power of two in 2..=16"
    );
    let w = width as usize;
    let mut n = Netlist::new(width * 2);
    let a: Vec<NodeId> = (0..width).map(|i| n.input(i)).collect();
    let b: Vec<NodeId> = (0..width).map(|i| n.input(width + i)).collect();

    // Per-bit propagate/generate.
    let p: Vec<NodeId> = (0..w).map(|i| n.xor(a[i], b[i])).collect();
    let g: Vec<NodeId> = (0..w).map(|i| n.and(a[i], b[i])).collect();

    // Prefix combine (g, p) ∘ (g', p') = (g | p·g', p·p').
    let mut gg = g.clone();
    let mut pp = p.clone();
    let combine = |n: &mut Netlist, gg: &mut Vec<NodeId>, pp: &mut Vec<NodeId>, i: usize, j: usize| {
        let t = n.and(pp[i], gg[j]);
        gg[i] = n.or(gg[i], t);
        pp[i] = n.and(pp[i], pp[j]);
    };

    // Up-sweep (reduction tree).
    let mut d = 1usize;
    while (1 << d) <= w {
        let step = 1 << d;
        let half = step >> 1;
        let mut i = step - 1;
        while i < w {
            combine(&mut n, &mut gg, &mut pp, i, i - half);
            i += step;
        }
        d += 1;
    }
    // Down-sweep (fills the remaining prefixes).
    while d > 1 {
        d -= 1;
        let step = 1 << d;
        let half = step >> 1;
        let mut i = step + half - 1;
        while i < w {
            combine(&mut n, &mut gg, &mut pp, i, i - half);
            i += step;
        }
    }
    // After the sweeps gg[i] is the carry out of bit i (prefix generate).
    let zero = n.constant(false);
    let mut outputs = Vec::with_capacity(w + 1);
    for i in 0..w {
        let cin = if i == 0 { zero } else { gg[i - 1] };
        outputs.push(n.xor(p[i], cin));
    }
    outputs.push(gg[w - 1]); // carry-out = MSB of the sum
    n.set_outputs(outputs);
    n
}

/// Builds a gate-level array multiplier: `width`-bit `a × b` with a
/// `2·width`-bit product (the paper's 16-input, 16-output benchmark for
/// `width = 8`).
///
/// # Panics
///
/// Panics unless `2 ≤ width ≤ 16`.
pub fn array_multiplier(width: u32) -> Netlist {
    assert!((2..=16).contains(&width), "width must be in 2..=16");
    let w = width as usize;
    let mut n = Netlist::new(width * 2);
    let a: Vec<NodeId> = (0..width).map(|i| n.input(i)).collect();
    let b: Vec<NodeId> = (0..width).map(|i| n.input(width + i)).collect();
    let zero = n.constant(false);

    // Row 0: partial products of a[0]; bit 0 is final, the rest carries
    // into the accumulator at absolute positions 1..w.
    let row0: Vec<NodeId> = (0..w).map(|j| n.and(a[0], b[j])).collect();
    let mut outputs = vec![row0[0]];
    // Invariant entering row i: acc[j] holds product position i + j.
    let mut acc: Vec<NodeId> = row0[1..].to_vec();

    // Rows 1..w: ripple-carry add the shifted partial products.
    for &a_bit in a.iter().take(w).skip(1) {
        let pp: Vec<NodeId> = (0..w).map(|j| n.and(a_bit, b[j])).collect();
        let mut next = Vec::with_capacity(w + 1);
        let mut carry = zero;
        for (j, &pp_bit) in pp.iter().enumerate() {
            let acc_bit = acc.get(j).copied().unwrap_or(zero);
            let (s, c) = n.full_adder(acc_bit, pp_bit, carry);
            next.push(s);
            carry = c;
        }
        next.push(carry);
        outputs.push(next[0]); // product bit i is final
        acc = next[1..].to_vec(); // positions i+1 .. i+w
    }
    // Remaining high bits: positions w .. 2w-1.
    outputs.extend(acc);
    n.set_outputs(outputs);
    n
}

/// Materializes a netlist into a complete multi-output Boolean function.
///
/// # Panics
///
/// Panics if the netlist has no outputs or more than 30 inputs.
pub fn netlist_to_function(n: &Netlist) -> MultiOutputFn {
    assert!(n.num_outputs() > 0, "netlist has no outputs");
    MultiOutputFn::from_word_fn(n.num_inputs(), n.num_outputs(), |p| n.eval(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brent_kung_is_an_adder() {
        for width in [2u32, 4, 8] {
            let n = brent_kung_adder(width);
            assert_eq!(n.num_outputs(), width + 1);
            let mask = (1u64 << width) - 1;
            for p in 0..(1u64 << (2 * width)) {
                let a = p & mask;
                let b = (p >> width) & mask;
                assert_eq!(n.eval(p), a + b, "width {width}: {a} + {b}");
            }
        }
    }

    #[test]
    fn multiplier_is_a_multiplier() {
        for width in [2u32, 3, 4, 6] {
            let n = array_multiplier(width);
            assert_eq!(n.num_outputs(), 2 * width);
            let mask = (1u64 << width) - 1;
            for p in 0..(1u64 << (2 * width)) {
                let a = p & mask;
                let b = (p >> width) & mask;
                assert_eq!(n.eval(p), a * b, "width {width}: {a} * {b}");
            }
        }
    }

    #[test]
    fn eight_bit_multiplier_spot_checks() {
        let n = array_multiplier(8);
        for (a, b) in [(0u64, 0u64), (255, 255), (17, 19), (128, 2), (200, 113)] {
            assert_eq!(n.eval(a | (b << 8)), a * b);
        }
    }

    #[test]
    fn netlist_to_function_matches_eval() {
        let n = brent_kung_adder(4);
        let f = netlist_to_function(&n);
        for p in 0..256u64 {
            assert_eq!(f.eval_word(p), n.eval(p));
        }
    }

    #[test]
    fn brent_kung_gate_count_reasonable() {
        // Brent-Kung on 8 bits: 8 P/G pairs + ~11 prefix combines (3 gates
        // each after the first AND) + sum XORs — well under a naive ripple.
        let n = brent_kung_adder(8);
        assert!(n.num_gates() < 100, "got {}", n.num_gates());
    }
}
