//! Uniform quantization of real-valued functions into multi-output Boolean
//! functions, matching the paper's benchmark construction.

use adis_boolfn::MultiOutputFn;

/// A uniform input/output quantization scheme: `n` input bits spanning a
/// real domain, `m` output bits spanning a real range.
///
/// Input pattern `p ∈ [0, 2^n)` maps to
/// `x = lo + (hi − lo) · p / (2^n − 1)`; output `y` maps to the nearest of
/// `2^m` levels over the range, clamped at the ends.
///
/// # Examples
///
/// ```
/// use adis_benchfn::Quantizer;
///
/// let q = Quantizer::new(4, 4, (0.0, 1.0), (0.0, 1.0))?;
/// let f = q.quantize(|x| x);
/// assert_eq!(f.eval_word(0), 0);
/// assert_eq!(f.eval_word(15), 15);
/// # Ok::<(), adis_benchfn::QuantizeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Quantizer {
    input_bits: u32,
    output_bits: u32,
    domain: (f64, f64),
    range: (f64, f64),
}

/// Error constructing a [`Quantizer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantizeError {
    /// Input bits must be in `1..=30`, output bits in `1..=64`.
    BadBitWidth,
    /// The domain/range interval must have positive width.
    EmptyInterval,
}

impl std::fmt::Display for QuantizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantizeError::BadBitWidth => write!(f, "unsupported bit width"),
            QuantizeError::EmptyInterval => write!(f, "interval must have positive width"),
        }
    }
}

impl std::error::Error for QuantizeError {}

impl Quantizer {
    /// Creates a quantizer.
    ///
    /// # Errors
    ///
    /// Returns an error for unsupported bit widths or empty intervals.
    pub fn new(
        input_bits: u32,
        output_bits: u32,
        domain: (f64, f64),
        range: (f64, f64),
    ) -> Result<Self, QuantizeError> {
        if input_bits == 0 || input_bits > 30 || output_bits == 0 || output_bits > 64 {
            return Err(QuantizeError::BadBitWidth);
        }
        if domain.1 <= domain.0 || range.1 <= range.0 {
            return Err(QuantizeError::EmptyInterval);
        }
        Ok(Quantizer {
            input_bits,
            output_bits,
            domain,
            range,
        })
    }

    /// Number of input bits `n`.
    pub fn input_bits(&self) -> u32 {
        self.input_bits
    }

    /// Number of output bits `m`.
    pub fn output_bits(&self) -> u32 {
        self.output_bits
    }

    /// The real input value encoded by pattern `p`.
    pub fn decode_input(&self, p: u64) -> f64 {
        let steps = ((1u64 << self.input_bits) - 1) as f64;
        self.domain.0 + (self.domain.1 - self.domain.0) * (p as f64) / steps
    }

    /// The output level (0-based) for real value `y`, clamped to the range.
    pub fn encode_output(&self, y: f64) -> u64 {
        let levels = if self.output_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.output_bits) - 1
        };
        let frac = (y - self.range.0) / (self.range.1 - self.range.0);
        let scaled = (frac * levels as f64).round();
        if scaled <= 0.0 {
            0
        } else if scaled >= levels as f64 {
            levels
        } else {
            scaled as u64
        }
    }

    /// The real value represented by output level `w`.
    pub fn decode_output(&self, w: u64) -> f64 {
        let levels = ((1u64 << self.output_bits) - 1) as f64;
        self.range.0 + (self.range.1 - self.range.0) * (w as f64) / levels
    }

    /// Quantizes `f` into a complete multi-output Boolean function.
    pub fn quantize<F: Fn(f64) -> f64>(&self, f: F) -> MultiOutputFn {
        MultiOutputFn::from_word_fn(self.input_bits, self.output_bits, |p| {
            self.encode_output(f(self.decode_input(p)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_endpoints() {
        let q = Quantizer::new(8, 8, (0.0, 1.0), (0.0, 1.0)).unwrap();
        let f = q.quantize(|x| x);
        assert_eq!(f.eval_word(0), 0);
        assert_eq!(f.eval_word(255), 255);
        assert_eq!(f.eval_word(128), 128);
    }

    #[test]
    fn clamping() {
        let q = Quantizer::new(4, 4, (0.0, 1.0), (0.0, 0.5)).unwrap();
        let f = q.quantize(|x| x); // values above 0.5 clamp to max level
        assert_eq!(f.eval_word(15), 15);
        assert_eq!(f.eval_word(8), 15); // 8/15 ≈ 0.53 > 0.5
    }

    #[test]
    fn decode_encode_round_trip() {
        let q = Quantizer::new(8, 12, (-2.0, 2.0), (0.0, 10.0)).unwrap();
        for w in [0u64, 1, 100, 4095] {
            assert_eq!(q.encode_output(q.decode_output(w)), w);
        }
        assert!((q.decode_input(0) - (-2.0)).abs() < 1e-12);
        assert!((q.decode_input(255) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_functions_stay_monotone() {
        let q = Quantizer::new(6, 6, (0.0, 3.0), (0.0, 20.0)).unwrap();
        let f = q.quantize(f64::exp);
        let mut prev = 0;
        for p in 0..64 {
            let w = f.eval_word(p);
            assert!(w >= prev, "quantized exp must be nondecreasing");
            prev = w;
        }
    }

    #[test]
    fn validation() {
        assert_eq!(
            Quantizer::new(0, 4, (0.0, 1.0), (0.0, 1.0)),
            Err(QuantizeError::BadBitWidth)
        );
        assert_eq!(
            Quantizer::new(4, 4, (1.0, 1.0), (0.0, 1.0)),
            Err(QuantizeError::EmptyInterval)
        );
    }
}
