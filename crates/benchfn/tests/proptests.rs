//! Property-based tests for the benchmark substrate.

use adis_benchfn::{
    array_multiplier, brent_kung_adder, erf, forwardk2j_x, inversek2j_theta2, netlist_to_function,
    Quantizer,
};
use proptest::prelude::*;

proptest! {
    /// Quantizer encode/decode round trip and monotonicity.
    #[test]
    fn quantizer_round_trip(
        n in 2u32..10,
        m in 2u32..12,
        lo in -5.0..0.0f64,
        span in 0.1..10.0f64,
    ) {
        let q = Quantizer::new(n, m, (lo, lo + span), (0.0, 1.0)).expect("valid");
        // decode_input is monotone increasing over patterns.
        let mut prev = f64::NEG_INFINITY;
        for p in 0..(1u64 << n) {
            let x = q.decode_input(p);
            prop_assert!(x > prev);
            prev = x;
        }
        prop_assert!((q.decode_input(0) - lo).abs() < 1e-9);
        prop_assert!((q.decode_input((1 << n) - 1) - (lo + span)).abs() < 1e-9);
        // encode(decode(w)) == w for all levels.
        for w in [0u64, 1, (1 << m) / 2, (1 << m) - 1] {
            prop_assert_eq!(q.encode_output(q.decode_output(w)), w);
        }
    }

    /// Monotone real functions quantize to monotone tables.
    #[test]
    fn quantizer_preserves_monotonicity(n in 3u32..9, m in 3u32..10) {
        let q = Quantizer::new(n, m, (0.0, 2.0), (0.0, 4.0)).expect("valid");
        let f = q.quantize(|x| x * x);
        let mut prev = 0u64;
        for p in 0..(1u64 << n) {
            let w = f.eval_word(p);
            prop_assert!(w >= prev);
            prev = w;
        }
    }

    /// The gate-level adder is exact for random operands and widths.
    #[test]
    fn adder_correct(width in prop::sample::select(vec![2u32, 4, 8]), a in any::<u64>(), b in any::<u64>()) {
        let n = brent_kung_adder(width);
        let mask = (1u64 << width) - 1;
        let (a, b) = (a & mask, b & mask);
        prop_assert_eq!(n.eval(a | (b << width)), a + b);
    }

    /// The gate-level multiplier is exact for random operands and widths.
    #[test]
    fn multiplier_correct(width in 2u32..9, a in any::<u64>(), b in any::<u64>()) {
        let n = array_multiplier(width);
        let mask = (1u64 << width) - 1;
        let (a, b) = (a & mask, b & mask);
        prop_assert_eq!(n.eval(a | (b << width)), a * b);
    }

    /// erf is odd, bounded, and monotone.
    #[test]
    fn erf_properties(x in -4.0..4.0f64, y in -4.0..4.0f64) {
        prop_assert!((erf(x) + erf(-x)).abs() < 3e-7);
        prop_assert!(erf(x).abs() <= 1.0);
        if x < y {
            prop_assert!(erf(x) <= erf(y) + 1e-12);
        }
    }

    /// Forward then inverse kinematics recovers the elbow angle for
    /// reachable configurations.
    #[test]
    fn kinematics_round_trip(t1 in 0.0..1.5f64, t2 in 0.05..3.0f64) {
        let x = 0.5 * t1.cos() + 0.5 * (t1 + t2).cos();
        let y = 0.5 * t1.sin() + 0.5 * (t1 + t2).sin();
        let rec = inversek2j_theta2(x, y);
        prop_assert!((rec - t2).abs() < 1e-6, "t2 {t2} vs {rec}");
    }

    /// The end effector stays within the arm's reach disk.
    #[test]
    fn forward_kinematics_bounded(t1 in 0.0..6.3f64, t2 in 0.0..6.3f64) {
        let x = forwardk2j_x(t1, t2);
        prop_assert!(x.abs() <= 1.0 + 1e-12);
    }

    /// Netlist materialization matches direct evaluation on all patterns.
    #[test]
    fn netlist_function_agrees(width in prop::sample::select(vec![2u32, 4])) {
        let nl = brent_kung_adder(width);
        let f = netlist_to_function(&nl);
        for p in 0..(1u64 << (2 * width)) {
            prop_assert_eq!(f.eval_word(p), nl.eval(p));
        }
    }
}
