//! Lookup-table (LUT) architectures for computing with memory.
//!
//! Computing with memory stores a pre-computed Boolean function in a LUT and
//! retrieves results at runtime. A direct LUT for an `n`-input function
//! costs `2^n` bits per output; a disjoint decomposition
//! `g(X) = F(φ(B), A)` splits that into a `2^|B|`-bit φ-LUT plus a
//! `2^{|A|+1}`-bit F-LUT (the paper's Fig. 1: a 5-input, 32-bit LUT becomes
//! two 8-bit LUTs plus addressing — 2× smaller).
//!
//! This crate provides the storage/evaluation model the decomposition
//! framework targets:
//!
//! - [`DirectLut`]: flat storage of a multi-output function;
//! - [`OutputImpl`]: per-output implementation choice (flat or decomposed);
//! - [`ApproxLut`]: a full multi-output approximate LUT with bit-cost
//!   accounting.
//!
//! # Example
//!
//! ```
//! use adis_boolfn::{find_column_setting, BooleanMatrix, Partition, TruthTable};
//! use adis_lut::{ApproxLut, OutputImpl};
//!
//! // g = x0 XOR x3 decomposes over A = {x0, x1}, B = {x2, x3}.
//! let g = TruthTable::from_fn(4, |p| (p & 1) ^ ((p >> 3) & 1) == 1);
//! let w = Partition::new(4, vec![0, 1], vec![2, 3])?;
//! let setting = find_column_setting(&BooleanMatrix::build(&g, &w)).expect("decomposable");
//! let lut = ApproxLut::new(4, vec![OutputImpl::decomposed(&w, &setting)]);
//! for p in 0..16 {
//!     assert_eq!(lut.eval_word(p) == 1, g.eval(p));
//! }
//! // 4 + 8 = 12 bits instead of 16.
//! assert_eq!(lut.size_bits(), 12);
//! # Ok::<(), adis_boolfn::PartitionError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use adis_boolfn::{ColumnSetting, MultiOutputFn, Partition, RowSetting, TruthTable};
use std::fmt;

/// A flat LUT storing a complete multi-output function.
///
/// Size: `m · 2^n` bits.
#[derive(Clone, PartialEq, Eq)]
pub struct DirectLut {
    function: MultiOutputFn,
}

impl DirectLut {
    /// Stores `function` directly.
    pub fn new(function: MultiOutputFn) -> Self {
        DirectLut { function }
    }

    /// Number of address (input) bits.
    pub fn inputs(&self) -> u32 {
        self.function.inputs()
    }

    /// Number of data (output) bits per entry.
    pub fn outputs(&self) -> u32 {
        self.function.outputs()
    }

    /// Reads the stored word at address `pattern`.
    pub fn eval_word(&self, pattern: u64) -> u64 {
        self.function.eval_word(pattern)
    }

    /// Storage size in bits: `m · 2^n`.
    pub fn size_bits(&self) -> u64 {
        u64::from(self.outputs()) << self.inputs()
    }

    /// Borrow of the stored function.
    pub fn function(&self) -> &MultiOutputFn {
        &self.function
    }
}

impl fmt::Debug for DirectLut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DirectLut({}→{} bits, {} total)",
            self.inputs(),
            self.outputs(),
            self.size_bits()
        )
    }
}

/// How one output bit of an [`ApproxLut`] is implemented.
#[derive(Clone, PartialEq)]
pub enum OutputImpl {
    /// A flat `2^n`-bit table.
    Flat(TruthTable),
    /// A decomposed pair: `g(X) = F(φ(B), A)` with φ stored over the bound
    /// set and `F` over `{φ} ∪ A` (φ is F's input bit 0).
    Decomposed {
        /// The input partition the decomposition uses.
        partition: Partition,
        /// The bound-set function (one bit per bound assignment).
        phi: TruthTable,
        /// The free-set function over `|A| + 1` inputs.
        f: TruthTable,
    },
}

impl OutputImpl {
    /// Builds a decomposed output from a column-based setting.
    pub fn decomposed(partition: &Partition, setting: &ColumnSetting) -> Self {
        OutputImpl::Decomposed {
            partition: partition.clone(),
            phi: setting.phi(partition),
            f: setting.compose_f(partition),
        }
    }

    /// Builds a decomposed output from a row-based setting.
    pub fn decomposed_row(partition: &Partition, setting: &RowSetting) -> Self {
        OutputImpl::Decomposed {
            partition: partition.clone(),
            phi: setting.phi(partition),
            f: setting.compose_f(partition),
        }
    }

    /// Evaluates the output bit at `pattern`.
    pub fn eval(&self, pattern: u64) -> bool {
        match self {
            OutputImpl::Flat(t) => t.eval(pattern),
            OutputImpl::Decomposed { partition, phi, f } => {
                let (i, j) = partition.split(pattern);
                let phi_val = phi.eval(j as u64);
                f.eval(((i as u64) << 1) | u64::from(phi_val))
            }
        }
    }

    /// Storage size in bits.
    pub fn size_bits(&self) -> u64 {
        match self {
            OutputImpl::Flat(t) => t.num_entries() as u64,
            OutputImpl::Decomposed { phi, f, .. } => {
                phi.num_entries() as u64 + f.num_entries() as u64
            }
        }
    }

    /// Whether this output uses the decomposed form.
    pub fn is_decomposed(&self) -> bool {
        matches!(self, OutputImpl::Decomposed { .. })
    }
}

impl fmt::Debug for OutputImpl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OutputImpl::Flat(t) => write!(f, "Flat({} bits)", t.num_entries()),
            OutputImpl::Decomposed { phi, f: ff, .. } => write!(
                f,
                "Decomposed(φ {} bits + F {} bits)",
                phi.num_entries(),
                ff.num_entries()
            ),
        }
    }
}

/// A multi-output approximate LUT: one [`OutputImpl`] per output bit
/// (component 0 = LSB, matching [`MultiOutputFn`]).
#[derive(Clone, PartialEq)]
pub struct ApproxLut {
    inputs: u32,
    outputs: Vec<OutputImpl>,
}

impl ApproxLut {
    /// Assembles a LUT from per-output implementations.
    ///
    /// # Panics
    ///
    /// Panics if `outputs` is empty, an output's arity disagrees with
    /// `inputs`, or there are more than 64 outputs.
    pub fn new(inputs: u32, outputs: Vec<OutputImpl>) -> Self {
        assert!(
            !outputs.is_empty() && outputs.len() <= 64,
            "need 1..=64 outputs"
        );
        for (k, o) in outputs.iter().enumerate() {
            match o {
                OutputImpl::Flat(t) => {
                    assert_eq!(t.inputs(), inputs, "output {k}: flat arity mismatch")
                }
                OutputImpl::Decomposed { partition, phi, f } => {
                    assert_eq!(
                        partition.inputs(),
                        inputs,
                        "output {k}: partition arity mismatch"
                    );
                    assert_eq!(
                        phi.inputs() as usize,
                        partition.bound().len(),
                        "output {k}: phi arity mismatch"
                    );
                    assert_eq!(
                        f.inputs() as usize,
                        partition.free().len() + 1,
                        "output {k}: F arity mismatch"
                    );
                }
            }
        }
        ApproxLut { inputs, outputs }
    }

    /// Number of input bits.
    pub fn inputs(&self) -> u32 {
        self.inputs
    }

    /// Number of output bits.
    pub fn num_outputs(&self) -> u32 {
        self.outputs.len() as u32
    }

    /// Per-output implementations.
    pub fn outputs(&self) -> &[OutputImpl] {
        &self.outputs
    }

    /// Evaluates the full output word at `pattern`.
    pub fn eval_word(&self, pattern: u64) -> u64 {
        let mut w = 0;
        for (k, o) in self.outputs.iter().enumerate() {
            if o.eval(pattern) {
                w |= 1 << k;
            }
        }
        w
    }

    /// Total storage in bits.
    pub fn size_bits(&self) -> u64 {
        self.outputs.iter().map(OutputImpl::size_bits).sum()
    }

    /// Storage of the equivalent direct LUT (`m · 2^n` bits).
    pub fn direct_size_bits(&self) -> u64 {
        (self.outputs.len() as u64) << self.inputs
    }

    /// Size reduction factor versus the direct LUT (`> 1` is smaller).
    pub fn reduction_factor(&self) -> f64 {
        self.direct_size_bits() as f64 / self.size_bits() as f64
    }

    /// Materializes the function this LUT computes.
    pub fn to_function(&self) -> MultiOutputFn {
        MultiOutputFn::from_word_fn(self.inputs, self.num_outputs(), |p| self.eval_word(p))
    }
}

impl fmt::Debug for ApproxLut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ApproxLut({} inputs, {} outputs, {} bits, {:.2}x reduction)",
            self.inputs,
            self.outputs.len(),
            self.size_bits(),
            self.reduction_factor()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adis_boolfn::{find_column_setting, find_row_setting, BooleanMatrix};

    fn xor_table() -> (TruthTable, Partition) {
        // g = x0 XOR x2 over A = {x0, x1}, B = {x2, x3}.
        let g = TruthTable::from_fn(4, |p| (p & 1) ^ ((p >> 2) & 1) == 1);
        let w = Partition::new(4, vec![0, 1], vec![2, 3]).unwrap();
        (g, w)
    }

    #[test]
    fn direct_lut_size_and_eval() {
        let f = MultiOutputFn::from_word_fn(5, 3, |p| p % 8);
        let lut = DirectLut::new(f.clone());
        assert_eq!(lut.size_bits(), 3 * 32);
        for p in 0..32 {
            assert_eq!(lut.eval_word(p), f.eval_word(p));
        }
    }

    #[test]
    fn decomposed_output_matches_function() {
        let (g, w) = xor_table();
        let s = find_column_setting(&BooleanMatrix::build(&g, &w)).unwrap();
        let o = OutputImpl::decomposed(&w, &s);
        for p in 0..16 {
            assert_eq!(o.eval(p), g.eval(p));
        }
        // φ: 4 bits; F: 2^(2+1) = 8 bits.
        assert_eq!(o.size_bits(), 12);
        assert!(o.is_decomposed());
    }

    #[test]
    fn row_setting_output_matches() {
        let (g, w) = xor_table();
        let s = find_row_setting(&BooleanMatrix::build(&g, &w)).unwrap();
        let o = OutputImpl::decomposed_row(&w, &s);
        for p in 0..16 {
            assert_eq!(o.eval(p), g.eval(p));
        }
    }

    #[test]
    fn fig1_size_reduction() {
        // Paper Fig. 1: a decomposable 5-input function with |B| = 3,
        // |A| = 2 drops from 32 to 8 + 8 = 16 bits (2x).
        let w = Partition::new(5, vec![3, 4], vec![0, 1, 2]).unwrap();
        // g = parity of the bound set XOR x3 — decomposes over w.
        let g = TruthTable::from_fn(5, |p| {
            ((p & 1) ^ ((p >> 1) & 1) ^ ((p >> 2) & 1) ^ ((p >> 3) & 1)) == 1
        });
        let s = find_column_setting(&BooleanMatrix::build(&g, &w)).expect("decomposable");
        let lut = ApproxLut::new(5, vec![OutputImpl::decomposed(&w, &s)]);
        assert_eq!(lut.direct_size_bits(), 32);
        assert_eq!(lut.size_bits(), 16);
        assert!((lut.reduction_factor() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_outputs_and_to_function() {
        let (g, w) = xor_table();
        let s = find_column_setting(&BooleanMatrix::build(&g, &w)).unwrap();
        let flat = TruthTable::from_fn(4, |p| p >= 8);
        let lut = ApproxLut::new(
            4,
            vec![OutputImpl::decomposed(&w, &s), OutputImpl::Flat(flat.clone())],
        );
        assert_eq!(lut.size_bits(), 12 + 16);
        let f = lut.to_function();
        for p in 0..16 {
            assert_eq!(f.eval_bit(0, p), g.eval(p));
            assert_eq!(f.eval_bit(1, p), flat.eval(p));
        }
    }

    #[test]
    #[should_panic(expected = "flat arity mismatch")]
    fn arity_validated() {
        ApproxLut::new(4, vec![OutputImpl::Flat(TruthTable::constant(3, false))]);
    }
}
