//! # adis — approximate disjoint decomposition with an Ising-model solver
//!
//! Umbrella crate for the reproduction of *Efficient Approximate
//! Decomposition Solver using Ising Model* (DAC 2024). It re-exports every
//! sub-crate under one roof:
//!
//! - [`boolfn`]: Boolean functions, partitions, matrices, decomposition
//!   theorems, error metrics;
//! - [`ising`]: Ising problems (second- and higher-order), QUBO conversion,
//!   exhaustive solving;
//! - [`sb`]: simulated bifurcation solvers (aSB/bSB/dSB + higher-order);
//! - [`anneal`]: simulated annealing;
//! - [`ilp`]: exact 0-1 branch-and-bound (the Gurobi stand-in);
//! - [`lut`]: direct and decomposed LUT architectures;
//! - [`benchfn`]: the paper's benchmark suite (quantized continuous
//!   functions, gate-level circuits, kinematics kernels);
//! - [`core`]: the paper's contribution — the column-based core COP, its
//!   Ising formulations, the bSB COP solver with both improvement
//!   strategies, the baselines, and the decomposition framework;
//! - [`telemetry`]: the observability layer — [`telemetry::SolveObserver`]
//!   hooks threaded through every solve path, collectors, and the
//!   structured `results/RUN_*.json` run reports;
//! - [`check`]: the differential/metamorphic verification harness — the
//!   ground-truth error oracle, the cross-solver differential runner, the
//!   randomized config-identity sweeps, and the `adis-check` binary.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use adis_anneal as anneal;
pub use adis_check as check;
pub use adis_benchfn as benchfn;
pub use adis_boolfn as boolfn;
pub use adis_core as core;
pub use adis_ilp as ilp;
pub use adis_ising as ising;
pub use adis_lut as lut;
pub use adis_sb as sb;
pub use adis_telemetry as telemetry;
