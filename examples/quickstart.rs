//! Quickstart: shrink a LUT with approximate disjoint decomposition.
//!
//! Reproduces the motivation of the paper's Fig. 1 — exact decomposition
//! halving a LUT — then runs the real pipeline: approximate a quantized
//! `cos(x)` so that *every* output bit decomposes, using the Ising-model
//! (bSB) solver, and report the error/size trade.
//!
//! Run with: `cargo run --release --example quickstart`

use adis::benchfn::{Benchmark, ContinuousFn, QuantScheme};
use adis::boolfn::{find_column_setting, BooleanMatrix, Partition, TruthTable};
use adis::core::{Framework, Mode};
use adis::lut::{ApproxLut, OutputImpl};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Part 1: Fig. 1, exact decomposition --------------------------
    // A 5-input function that happens to decompose over {x0,x1,x2} | {x3,x4}:
    // g = parity(x0,x1,x2) XOR x3.
    let g = TruthTable::from_fn(5, |p| {
        ((p & 1) ^ ((p >> 1) & 1) ^ ((p >> 2) & 1) ^ ((p >> 3) & 1)) == 1
    });
    let w = Partition::new(5, vec![3, 4], vec![0, 1, 2])?;
    let m = BooleanMatrix::build(&g, &w);
    let setting = find_column_setting(&m).expect("g decomposes over w");
    let lut = ApproxLut::new(5, vec![OutputImpl::decomposed(&w, &setting)]);
    println!("== Fig. 1: exact disjoint decomposition ==");
    println!("direct LUT:      {} bits", lut.direct_size_bits());
    println!(
        "decomposed LUT:  {} bits ({}-bit φ + {}-bit F) → {:.1}x smaller",
        lut.size_bits(),
        1 << w.bound().len(),
        1 << (w.free().len() + 1),
        lut.reduction_factor()
    );
    // The decomposed LUT computes the same function.
    for p in 0..32 {
        assert_eq!(lut.eval_word(p) == 1, g.eval(p));
    }

    // ---- Part 2: approximate decomposition of cos(x) ------------------
    // Quantize cos(x) on [0, π/2] to 9 inputs / 9 outputs (the paper's
    // small scheme) and force a decomposition on every output bit.
    let cos = Benchmark::Continuous(ContinuousFn::Cos).function(QuantScheme::Small)?;
    println!("\n== Approximate decomposition of cos(x), n = m = 9 ==");
    let outcome = Framework::new(Mode::Joint, QuantScheme::Small.bound_size())
        .partitions(8)
        .rounds(1)
        .seed(7)
        .decompose(&cos);
    let lut = outcome.to_lut();
    println!("MED          : {:.3} LSBs (of a 9-bit output)", outcome.med);
    println!("word ER      : {:.3}", outcome.er);
    println!(
        "LUT size     : {} bits vs {} direct → {:.2}x smaller",
        lut.size_bits(),
        lut.direct_size_bits(),
        lut.reduction_factor()
    );
    println!(
        "solved {} core COPs in {:.2?}",
        outcome.cop_solves, outcome.elapsed
    );

    // Spot-check the approximate LUT against real cosine values.
    println!("\n x      cos(x)   LUT readout");
    for &frac in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        let p = ((511.0 * frac) as u64).min(511);
        let x = std::f64::consts::FRAC_PI_2 * p as f64 / 511.0;
        let approx_level = lut.eval_word(p) as f64 / 511.0;
        println!(" {x:.3}  {:.4}   {approx_level:.4}", x.cos());
    }
    Ok(())
}
