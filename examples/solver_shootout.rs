//! Solver shoot-out on a real core COP: the paper's proposed Ising/bSB
//! solver versus the exact branch-and-bound ("DALTA-ILP"), the DALTA
//! heuristic, BA, plain simulated annealing on the same Ising model, and
//! the alternating 2-means reference.
//!
//! The COP instance is genuine: one output bit of the quantized `exp(x)`
//! benchmark under a fixed partition, in joint mode shape (separate mode
//! weights for simplicity of standalone comparison).
//!
//! Run with: `cargo run --release --example solver_shootout`

use adis::anneal::{Annealer, Schedule};
use adis::benchfn::{Benchmark, ContinuousFn, QuantScheme};
use adis::boolfn::{BooleanMatrix, InputDist, Partition};
use adis::core::baselines::{solve_ba, solve_dalta_heuristic, BaParams};
use adis::core::{ColumnCop, IsingCopSolver, RowCop};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let f = Benchmark::Continuous(ContinuousFn::Exp).function(QuantScheme::Small)?;
    // Bit 7 (second-most-significant) is interesting: structured but not
    // trivially decomposable.
    let k = 7u32;
    let w = Partition::new(9, vec![0, 1, 2, 3], vec![4, 5, 6, 7, 8])?;
    let matrix = BooleanMatrix::build(f.component(k), &w);
    let col_cop = ColumnCop::separate(&matrix, &w, &InputDist::Uniform);
    let row_cop = RowCop::separate(&matrix, &w, &InputDist::Uniform);
    println!(
        "COP: bit {k} of exp(x), r = {} rows × c = {} cols, {} spins\n",
        matrix.rows(),
        matrix.cols(),
        col_cop.layout().num_spins()
    );
    println!("{:<28} {:>12} {:>12}", "solver", "ER", "time");
    println!("{}", "-".repeat(54));

    let report = |name: &str, obj: f64, t: std::time::Duration| {
        println!("{name:<28} {obj:>12.6} {t:>12.2?}");
    };

    // 1. Proposed: bSB + dynamic stop + type-reset heuristic.
    let t0 = Instant::now();
    let sol = IsingCopSolver::new().replicas(4).seed(1).solve(&col_cop);
    report("Ising bSB (proposed)", sol.objective, t0.elapsed());

    // 2. Same without the heuristic.
    let t0 = Instant::now();
    let sol = IsingCopSolver::new()
        .heuristic(false)
        .replicas(4)
        .seed(1)
        .solve(&col_cop);
    report("Ising bSB (no heuristic)", sol.objective, t0.elapsed());

    // 3. Exact row-based branch and bound (the DALTA-ILP role).
    let t0 = Instant::now();
    let sol = row_cop.solve_exact(Some(std::time::Duration::from_secs(30)));
    report(
        if sol.optimal { "exact B&B (optimal)" } else { "exact B&B (timeout)" },
        sol.objective,
        t0.elapsed(),
    );

    // 4. DALTA heuristic reconstruction.
    let t0 = Instant::now();
    let sol = solve_dalta_heuristic(&row_cop, 8, 1);
    report("DALTA heuristic", sol.objective, t0.elapsed());

    // 5. BA (simulated annealing over the row pattern).
    let t0 = Instant::now();
    let sol = solve_ba(&row_cop, &BaParams::default(), 1);
    report("BA (SA on V)", sol.objective, t0.elapsed());

    // 6. Plain SA on the full Ising model (no structure).
    let t0 = Instant::now();
    let ising = col_cop.to_ising();
    let r = Annealer::new()
        .schedule(Schedule::geometric(1.0, 1e-4, 400))
        .seed(1)
        .solve_batch(&ising, 4);
    let setting = col_cop.layout().decode(&r.best_state);
    report("SA on Ising model", col_cop.objective(&setting), t0.elapsed());

    // 7. Alternating 2-means reference (local optimum).
    let t0 = Instant::now();
    let s = col_cop.alternate(adis::boolfn::BitVec::zeros(matrix.cols()), 100);
    report("alternating 2-means", col_cop.objective(&s), t0.elapsed());

    println!(
        "\n(ER = probability a lookup of this output bit is wrong; lower is better.)"
    );
    Ok(())
}
