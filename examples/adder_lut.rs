//! Approximate LUT for a gate-level Brent-Kung adder.
//!
//! The paper's non-continuous benchmarks come from AxBench; this example
//! builds the 8+8-bit Brent-Kung adder *as a gate netlist*, materializes
//! its 16-input / 9-output truth table, and searches for approximate
//! disjoint decompositions of the low output bits — the classic
//! approximate-adder trade: exact carries are what make adder LUTs
//! non-decomposable, and small sum-bit errors are cheap in MED terms.
//!
//! To keep the example fast it decomposes an 8-input slice (4+4-bit adder);
//! the full 16-input run is the `fig4` bench binary's job.
//!
//! Run with: `cargo run --release --example adder_lut`

use adis::benchfn::{brent_kung_adder, netlist_to_function};
use adis::core::{CopSolverKind, Framework, IsingCopSolver, Mode};

fn main() {
    let netlist = brent_kung_adder(4);
    println!(
        "gate-level Brent-Kung adder: {} inputs, {} outputs, {} two-input gates",
        netlist.num_inputs(),
        netlist.num_outputs(),
        netlist.num_gates()
    );
    let adder = netlist_to_function(&netlist);

    // Verify the netlist is a real adder before approximating it.
    for a in 0..16u64 {
        for b in 0..16u64 {
            assert_eq!(adder.eval_word(a | (b << 4)), a + b);
        }
    }
    println!("netlist verified: computes a + b exactly\n");

    for (label, solver) in [
        ("Ising bSB (proposed)", CopSolverKind::Ising(IsingCopSolver::new().replicas(2))),
        ("exact B&B (DALTA-ILP)", CopSolverKind::Exact { time_limit: None }),
        ("DALTA heuristic", CopSolverKind::DaltaHeuristic { restarts: 4 }),
    ] {
        let outcome = Framework::new(Mode::Joint, 4)
            .solver(solver)
            .partitions(10)
            .rounds(1)
            .seed(3)
            .decompose(&adder);
        let lut = outcome.to_lut();
        println!(
            "{label:<24} MED {:>7.4}  max|err| {:>3}  {} bits (direct {}), {:.2}x smaller, {:.2?}",
            outcome.med,
            adis::boolfn::max_error_distance(&adder, &outcome.approx),
            lut.size_bits(),
            lut.direct_size_bits(),
            lut.reduction_factor(),
            outcome.elapsed
        );
    }

    println!("\nSample lookups (proposed solver, re-run):");
    let outcome = Framework::new(Mode::Joint, 4)
        .partitions(10)
        .seed(3)
        .decompose(&adder);
    let lut = outcome.to_lut();
    println!("    a +  b | exact | approx LUT");
    for (a, b) in [(3u64, 5u64), (9, 9), (15, 15), (7, 12), (0, 1)] {
        println!(
            "  {a:>3} + {b:>2} | {:>5} | {:>6}",
            a + b,
            lut.eval_word(a | (b << 4))
        );
    }
}
