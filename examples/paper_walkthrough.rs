//! Walks through the paper's worked examples:
//!
//! - Fig. 2 / Example 1: row-based decomposition of a 4-input function,
//!   recovering the paper's `V`, `S`, `φ = x̄₃` and `F`;
//! - Theorem 2 on the same matrix: exactly two column types;
//! - Fig. 3 / Examples 2–3: the joint-mode error-distance computation
//!   `ED₂₁₃ = |2·Ô₂₁₃ − 6|`.
//!
//! Run with: `cargo run --release --example paper_walkthrough`

use adis::boolfn::{
    find_column_setting, find_row_setting, BooleanMatrix, Partition, RowType, TruthTable,
};
use adis::core::ColumnCop;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 2 in the paper's display order (x3 is the high column digit,
    // x1 the high row digit); our 0-based vars re-index it.
    println!("== Fig. 2: the Boolean matrix ==");
    let w = Partition::new(4, vec![0, 1], vec![2, 3])?;
    let display_rows = [
        [1, 1, 0, 0], // x1x2 = 00 → pattern V
        [0, 0, 0, 0], // 01 → zeros
        [1, 1, 1, 1], // 10 → ones
        [0, 0, 1, 1], // 11 → complement of V
    ];
    // display (row e, col d): e = (x1<<1)|x2, d = (x3<<1)|x4 — convert to
    // our indices i = x1 + 2·x2 (bit 0 = x0 ≙ paper x1), j = x3 + 2·x4.
    let tt = TruthTable::from_fn(4, |p| {
        let (i, j) = w.split(p);
        let (x1, x2) = (i & 1, (i >> 1) & 1);
        let (x3, x4) = (j & 1, (j >> 1) & 1);
        display_rows[(x1 << 1) | x2][(x3 << 1) | x4] == 1
    });
    let m = BooleanMatrix::build(&tt, &w);
    for e in 0..4 {
        let row: Vec<u8> = (0..4)
            .map(|d| {
                let i = ((e >> 1) & 1) | ((e & 1) << 1);
                let j = ((d >> 1) & 1) | ((d & 1) << 1);
                u8::from(m.get(i, j))
            })
            .collect();
        println!("  x1x2={:02b}:  {:?}", e, row);
    }

    println!("\n== Example 1: row-based setting ==");
    let rs = find_row_setting(&m).expect("Fig. 2 decomposes");
    let paper_s: Vec<u8> = {
        // report S in the paper's display row order
        (0..4usize)
            .map(|e| {
                let i = ((e >> 1) & 1) | ((e & 1) << 1);
                rs.s[i].paper_index()
            })
            .collect()
    };
    println!("  S (display order) = {paper_s:?}   (paper: [3, 1, 2, 4])");
    assert_eq!(paper_s, vec![3, 1, 2, 4]);
    let phi = rs.phi(&w);
    // φ must be NOT(x3): x3 is our input x2, column bit 0.
    let phi_is_not_x3 = (0..4u64).all(|j| phi.eval(j) == (j & 1 == 0));
    println!("  φ(x3, x4) = x̄3  → {phi_is_not_x3}");
    assert!(phi_is_not_x3);
    let f = rs.compose_f(&w);
    // F(φ, x1, x2) = φ·x̄1x̄2 + x1x̄2 + φ̄·x1x2, checked on all 8 patterns.
    for pat in 0..8u64 {
        let phi_v = pat & 1;
        let x1 = (pat >> 1) & 1;
        let x2 = (pat >> 2) & 1;
        let expect = (phi_v & (1 - x1) & (1 - x2)) | (x1 & (1 - x2)) | ((1 - phi_v) & x1 & x2);
        assert_eq!(f.eval(pat), expect == 1, "F mismatch at {pat:#b}");
    }
    println!("  F(φ, x1, x2) = φ·x̄1·x̄2 + x1·x̄2 + φ̄·x1·x2  ✓");

    println!("\n== Theorem 2: column view of the same matrix ==");
    let cs = find_column_setting(&m).expect("two column types");
    println!(
        "  distinct columns: {} (paper: the two types (1,0,1,0) and (0,0,1,1))",
        m.distinct_columns().len()
    );
    assert_eq!(m.distinct_columns().len(), 2);
    assert_eq!(cs.mismatch_count(&m), 0);

    println!("\n== Example 3: joint-mode error distance ==");
    // The paper computes ED_213 for the cell with D = −6 and weight 2^1:
    // ED = |2·Ô − 6|, i.e. 6 when Ô = 0 and 4 when Ô = 1 — so the COP
    // prefers Ô = 1 with linearized gain q = 2^1·sgn(−6)·… (Eq. 15 case).
    let cop = ColumnCop::joint(1, 1, 1, &[-6], &[1.0]);
    let cost = |o: bool| {
        use adis::boolfn::{BitVec, ColumnSetting};
        cop.objective(&ColumnSetting {
            v1: BitVec::from_bools([o]),
            v2: BitVec::from_bools([o]),
            t: BitVec::zeros(1),
        })
    };
    println!("  ED(Ô = 0) = {}   ED(Ô = 1) = {}   (paper: |2·Ô − 6|)", cost(false), cost(true));
    assert_eq!(cost(false), 6.0);
    assert_eq!(cost(true), 4.0);

    // And the Fig. 3 row-type sanity: our RowType indices match the paper.
    assert_eq!(RowType::Pattern.paper_index(), 3);
    println!("\nAll paper examples reproduced exactly.");
    Ok(())
}
