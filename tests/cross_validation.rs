//! Cross-crate validation: the Ising encodings, the exact solvers, and the
//! heuristic solvers must all agree on real benchmark-derived COPs.

use adis::benchfn::ContinuousFn;
use adis::boolfn::{BitVec, BooleanMatrix, ColumnSetting, InputDist, Partition};
use adis::core::{ColumnCop, IsingCopSolver, RowCop};
use adis::ising::solve_exhaustive;
use proptest::prelude::*;

/// A realistic small COP: one bit of a quantized continuous function under
/// a 3+3 partition (8×8 matrix, 24 spins — exhaustively checkable).
fn benchmark_cop(f: ContinuousFn, bit: u32) -> (ColumnCop, RowCop) {
    let table = f.function(6, 6).expect("valid widths");
    let w = Partition::new(6, vec![0, 1, 2], vec![3, 4, 5]).expect("valid");
    let m = BooleanMatrix::build(table.component(bit), &w);
    (
        ColumnCop::separate(&m, &w, &InputDist::Uniform),
        RowCop::separate(&m, &w, &InputDist::Uniform),
    )
}

#[test]
fn column_exhaustive_equals_full_ising_ground_state() {
    for f in [ContinuousFn::Cos, ContinuousFn::Exp, ContinuousFn::Ln] {
        for bit in [2u32, 4] {
            let (cop, _) = benchmark_cop(f, bit);
            let best = cop.objective(&cop.solve_exhaustive());
            let ground = solve_exhaustive(&cop.to_ising());
            assert!(
                (best - ground.energy).abs() < 1e-9,
                "{}[{bit}]: {} vs {}",
                f.name(),
                best,
                ground.energy
            );
        }
    }
}

#[test]
fn row_exact_equals_column_exhaustive() {
    // Both characterizations describe the same decomposition space, so the
    // exact optima must coincide.
    for f in [ContinuousFn::Tan, ContinuousFn::Erf] {
        for bit in [1u32, 3, 5] {
            let (col, row) = benchmark_cop(f, bit);
            let col_best = col.objective(&col.solve_exhaustive());
            let row_best = row.solve_exact(None).objective;
            assert!(
                (col_best - row_best).abs() < 1e-9,
                "{}[{bit}]: column {col_best} vs row {row_best}",
                f.name()
            );
        }
    }
}

#[test]
fn ising_solver_close_to_exact_on_benchmark_cops() {
    let mut total_gap = 0.0;
    let mut count = 0;
    for f in ContinuousFn::ALL {
        for bit in [3u32, 5] {
            let (cop, _) = benchmark_cop(f, bit);
            let exact = cop.objective(&cop.solve_exhaustive());
            let sol = IsingCopSolver::new().replicas(4).seed(11).solve(&cop);
            assert!(sol.objective >= exact - 1e-12);
            total_gap += sol.objective - exact;
            count += 1;
        }
    }
    // Across 12 benchmark COPs the mean optimality gap must be tiny
    // (ER units; exact optima here are O(0.1)).
    let mean_gap = total_gap / count as f64;
    assert!(mean_gap < 0.01, "mean optimality gap {mean_gap}");
}

#[test]
fn row_ilp_cross_check_on_tiny_cop() {
    // The generic ILP path must agree with the specialized B&B.
    let table = ContinuousFn::Cos.function(4, 4).expect("valid widths");
    let w = Partition::new(4, vec![0, 1], vec![2, 3]).expect("valid");
    for bit in 0..4 {
        let m = BooleanMatrix::build(table.component(bit), &w);
        let cop = RowCop::separate(&m, &w, &InputDist::Uniform);
        let bb = cop.solve_exact(None);
        let ilp = cop.solve_ilp(None).expect("feasible");
        assert!(
            (bb.objective - ilp.objective).abs() < 1e-9,
            "bit {bit}: bb {} vs ilp {}",
            bb.objective,
            ilp.objective
        );
    }
}

#[test]
fn third_order_row_ising_agrees_with_objective() {
    let (_, row) = benchmark_cop(ContinuousFn::Denoise, 4);
    let e = row.to_ising3();
    assert_eq!(e.degree(), 3, "row COP requires a third-order model");
    // Spot-check energies against objectives on random settings.
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
    for _ in 0..50 {
        let spins = adis::ising::SpinVector::from_bools(
            (0..e.num_spins()).map(|_| rng.gen_bool(0.5)),
        );
        let setting = row.decode_ising3(&spins);
        assert!((e.energy(&spins) - row.objective(&setting)).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For random COP weights, the Ising encoding is exact on random
    /// settings (integration-level repeat of the unit property, with the
    /// full public API path).
    #[test]
    fn ising_encoding_exact_for_random_cops(
        weights in prop::collection::vec(-1.0..1.0f64, 24),
        constant in 0.0..3.0f64,
        bits in prop::collection::vec(any::<bool>(), 14),
    ) {
        let cop = ColumnCop::from_weights(4, 6, weights, constant);
        let setting = ColumnSetting {
            v1: BitVec::from_bools(bits[0..4].to_vec()),
            v2: BitVec::from_bools(bits[4..8].to_vec()),
            t: BitVec::from_bools(bits[8..14].to_vec()),
        };
        let ising = cop.to_ising();
        let spins = cop.layout().encode(&setting);
        prop_assert!((ising.energy(&spins) - cop.objective(&setting)).abs() < 1e-9);
    }

    /// Theorem-3 resets can only improve the objective, for any setting of
    /// any random COP.
    #[test]
    fn type_reset_monotone(
        weights in prop::collection::vec(-1.0..1.0f64, 20),
        bits in prop::collection::vec(any::<bool>(), 13),
    ) {
        let cop = ColumnCop::from_weights(4, 5, weights, 0.0);
        let s = ColumnSetting {
            v1: BitVec::from_bools(bits[0..4].to_vec()),
            v2: BitVec::from_bools(bits[4..8].to_vec()),
            t: BitVec::from_bools(bits[8..13].to_vec()),
        };
        let reset = ColumnSetting {
            v1: s.v1.clone(),
            v2: s.v2.clone(),
            t: cop.optimal_t(&s.v1, &s.v2),
        };
        prop_assert!(cop.objective(&reset) <= cop.objective(&s) + 1e-12);
    }
}
