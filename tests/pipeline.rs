//! End-to-end integration tests spanning every crate: benchmark function →
//! decomposition framework → approximate LUT → error metrics.

use adis::benchfn::{Benchmark, ContinuousFn, QuantScheme};
use adis::boolfn::{
    error_rate_multi, find_column_setting, mean_error_distance, BooleanMatrix, InputDist,
};
use adis::core::{CopSolverKind, Framework, IsingCopSolver, Mode};

/// Fast framework for tests: few partitions, serial.
fn fw(mode: Mode, solver: CopSolverKind) -> Framework {
    Framework::new(mode, 3)
        .solver(solver)
        .partitions(4)
        .rounds(1)
        .parallel(false)
        .seed(42)
}

/// A cheap 7-input target: quantized cos to 7 inputs / 5 outputs.
fn small_cos() -> adis::boolfn::MultiOutputFn {
    ContinuousFn::Cos.function(7, 5).expect("valid widths")
}

#[test]
fn full_pipeline_function_to_lut() {
    let f = small_cos();
    let outcome = fw(Mode::Joint, CopSolverKind::Ising(IsingCopSolver::new())).decompose(&f);

    // 1. Reported metrics must match a recomputation from scratch.
    let med = mean_error_distance(&f, &outcome.approx, &InputDist::Uniform);
    let er = error_rate_multi(&f, &outcome.approx, &InputDist::Uniform);
    assert!((outcome.med - med).abs() < 1e-12);
    assert!((outcome.er - er).abs() < 1e-12);

    // 2. The LUT must compute exactly the approximate function.
    let lut = outcome.to_lut();
    for p in 0..f.num_entries() as u64 {
        assert_eq!(lut.eval_word(p), outcome.approx.eval_word(p));
    }

    // 3. Every output must decompose exactly over its chosen partition.
    for (k, choice) in outcome.choices.iter().enumerate() {
        let m = BooleanMatrix::build(outcome.approx.component(k as u32), &choice.partition);
        assert!(find_column_setting(&m).is_some(), "component {k}");
    }

    // 4. The decomposed LUT is strictly smaller than direct storage.
    assert!(lut.size_bits() < lut.direct_size_bits());
}

#[test]
fn all_solvers_complete_the_pipeline() {
    let f = small_cos();
    for solver in [
        CopSolverKind::Ising(IsingCopSolver::new()),
        CopSolverKind::Exact { time_limit: None },
        CopSolverKind::DaltaHeuristic { restarts: 2 },
        CopSolverKind::Ba(adis::core::baselines::BaParams {
            sweeps: 40,
            restarts: 1,
            ..Default::default()
        }),
    ] {
        let outcome = fw(Mode::Joint, solver.clone()).decompose(&f);
        assert!(outcome.med.is_finite());
        assert!(outcome.med >= 0.0);
        assert_eq!(outcome.choices.len(), 5);
        // MED of a 5-bit output cannot exceed 31.
        assert!(outcome.med <= 31.0, "{solver:?}: MED {}", outcome.med);
    }
}

#[test]
fn joint_mode_beats_separate_mode_on_med() {
    // The paper's Table 1 structure: joint-mode MED < separate-mode MED.
    let f = small_cos();
    let joint = fw(Mode::Joint, CopSolverKind::Exact { time_limit: None }).decompose(&f);
    let sep = fw(Mode::Separate, CopSolverKind::Exact { time_limit: None }).decompose(&f);
    assert!(
        joint.med <= sep.med + 1e-9,
        "joint {} vs separate {}",
        joint.med,
        sep.med
    );
}

#[test]
fn gate_level_circuits_run_through_framework() {
    // 8-input slice of the Brent-Kung adder (4+4 bits).
    let adder = adis::benchfn::netlist_to_function(&adis::benchfn::brent_kung_adder(4));
    let outcome = Framework::new(Mode::Joint, 4)
        .partitions(4)
        .parallel(false)
        .seed(9)
        .decompose(&adder);
    // Low bits of an adder are cheap to approximate; the MSB (carry) is
    // heavily weighted, so MED stays well under an LSB-scale bound.
    assert!(outcome.med < 4.0, "MED {}", outcome.med);
}

#[test]
fn kinematics_benchmarks_pipeline() {
    let f = adis::benchfn::forwardk2j(8, 6).expect("valid widths");
    let outcome = fw(Mode::Joint, CopSolverKind::Ising(IsingCopSolver::new())).decompose(&f);
    assert!(outcome.med.is_finite());
    let lut = outcome.to_lut();
    assert!(lut.size_bits() < lut.direct_size_bits());
}

#[test]
fn deterministic_end_to_end() {
    let f = small_cos();
    let a = fw(Mode::Joint, CopSolverKind::Ising(IsingCopSolver::new())).decompose(&f);
    let b = fw(Mode::Joint, CopSolverKind::Ising(IsingCopSolver::new())).decompose(&f);
    assert_eq!(a.approx, b.approx);
    assert_eq!(a.med, b.med);
}

#[test]
fn parallel_matches_serial_end_to_end() {
    let f = small_cos();
    let serial = fw(Mode::Joint, CopSolverKind::Ising(IsingCopSolver::new()))
        .parallel(false)
        .decompose(&f);
    let parallel = fw(Mode::Joint, CopSolverKind::Ising(IsingCopSolver::new()))
        .parallel(true)
        .decompose(&f);
    assert_eq!(serial.approx, parallel.approx);
}

#[test]
fn benchmark_suite_small_scheme_shapes() {
    for b in Benchmark::continuous() {
        let f = b.function(QuantScheme::Small).expect("continuous supports small");
        assert_eq!(f.inputs(), 9);
        assert_eq!(f.outputs(), 9);
    }
}

#[test]
fn decomposable_target_reaches_zero_med() {
    // A function whose every component decomposes over some |B| = 3
    // partition: each output only depends on x0..x2.
    let f = adis::boolfn::MultiOutputFn::from_word_fn(6, 3, |p| (p & 0b111).wrapping_mul(3) & 0b111);
    let outcome = Framework::new(Mode::Joint, 3)
        .partitions(20) // enumerates all C(6,3) = 20
        .parallel(false)
        .decompose(&f);
    assert_eq!(outcome.med, 0.0, "fully decomposable target must be free");
    assert_eq!(outcome.er, 0.0);
}
